//! Convergence theory for the five-point Laplacian: spectral radii of the
//! classic iterations and predicted iteration counts.
//!
//! The textbook results for the Dirichlet Laplacian on an `(m+2) x (n+2)`
//! grid (`m x n` interior points), uniform spacing:
//!
//! * Jacobi:       `rho_J  = (cos(pi/(m+1)) + cos(pi/(n+1))) / 2`
//! * Gauss-Seidel: `rho_GS = rho_J²`
//! * optimal SOR:  `omega* = 2 / (1 + sqrt(1 - rho_J²))`,
//!   `rho_SOR = omega* - 1`
//!
//! Iterations to shrink the error by a factor `1/eps` follow
//! `k ≈ ln(eps) / ln(rho)`. The tests check the crate's *measured*
//! iteration counts against these predictions — theory validating
//! implementation and vice versa.

use core::f64::consts::PI;

/// Spectral radius of the Jacobi iteration on the `m x n`-interior
/// five-point Laplacian (uniform spacing).
///
/// # Panics
///
/// Panics if either interior dimension is zero.
pub fn jacobi_spectral_radius(interior_rows: usize, interior_cols: usize) -> f64 {
    assert!(interior_rows > 0 && interior_cols > 0, "empty interior");
    ((PI / (interior_rows + 1) as f64).cos() + (PI / (interior_cols + 1) as f64).cos()) / 2.0
}

/// Spectral radius of Gauss-Seidel: `rho_J²`.
pub fn gauss_seidel_spectral_radius(interior_rows: usize, interior_cols: usize) -> f64 {
    jacobi_spectral_radius(interior_rows, interior_cols).powi(2)
}

/// The optimal SOR relaxation factor `2 / (1 + sqrt(1 - rho_J²))`.
pub fn optimal_sor_omega(interior_rows: usize, interior_cols: usize) -> f64 {
    let rho = jacobi_spectral_radius(interior_rows, interior_cols);
    2.0 / (1.0 + (1.0 - rho * rho).sqrt())
}

/// Spectral radius of optimally relaxed SOR: `omega* - 1`.
pub fn optimal_sor_spectral_radius(interior_rows: usize, interior_cols: usize) -> f64 {
    optimal_sor_omega(interior_rows, interior_cols) - 1.0
}

/// Predicted iterations to shrink the error by `reduction` (e.g. `1e6`
/// for six orders of magnitude) at spectral radius `rho`.
///
/// # Panics
///
/// Panics unless `0 < rho < 1` and `reduction > 1`.
pub fn iterations_for_reduction(rho: f64, reduction: f64) -> f64 {
    assert!(rho > 0.0 && rho < 1.0, "spectral radius must be in (0,1)");
    assert!(reduction > 1.0, "reduction factor must exceed 1");
    reduction.ln() / -rho.ln()
}

/// Two-norm condition number of the five-point Dirichlet Laplacian with
/// `m x n` interior points: `kappa = lambda_max / lambda_min =
/// (1 + rho_J) / (1 - rho_J)` (the extreme eigenvalues of the system
/// matrix are `2 * (1 ∓ rho_J)` times the identity scaling).
pub fn laplacian_condition_number(interior_rows: usize, interior_cols: usize) -> f64 {
    let rho = jacobi_spectral_radius(interior_rows, interior_cols);
    (1.0 + rho) / (1.0 - rho)
}

/// Per-iteration error contraction of conjugate gradients on the
/// five-point Laplacian: the classic energy-norm bound
/// `(sqrt(kappa) - 1) / (sqrt(kappa) + 1)`. An upper-bound rate — CG with
/// clustered spectra converges faster, never slower.
pub fn cg_error_contraction(interior_rows: usize, interior_cols: usize) -> f64 {
    let k = laplacian_condition_number(interior_rows, interior_cols).sqrt();
    (k - 1.0) / (k + 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::convergence::StopCondition;
    use crate::pde::LaplaceProblem;
    use crate::solver::{solve, UpdateMethod};

    #[test]
    fn spectral_radii_order_and_limits() {
        let (m, n) = (48, 48);
        let j = jacobi_spectral_radius(m, n);
        let gs = gauss_seidel_spectral_radius(m, n);
        let sor = optimal_sor_spectral_radius(m, n);
        assert!(0.0 < sor && sor < gs && gs < j && j < 1.0);
        // Refinement pushes rho_J toward 1.
        assert!(jacobi_spectral_radius(96, 96) > j);
        // Square-grid closed form: rho_J = cos(pi/(m+1)).
        assert!((j - (PI / 49.0).cos()).abs() < 1e-12);
    }

    #[test]
    fn omega_star_in_range() {
        let w = optimal_sor_omega(48, 48);
        assert!(w > 1.0 && w < 2.0);
        // Bigger grids want stronger over-relaxation.
        assert!(optimal_sor_omega(96, 96) > w);
    }

    #[test]
    fn predictions_match_measured_asymptotics() {
        // Measure iterations between two update-norm levels in the
        // asymptotic regime and compare the implied contraction rate to
        // rho_J / rho_GS.
        let n = 40; // 38x38 interior
        let sp = LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>();
        for (method, rho) in [
            (UpdateMethod::Jacobi, jacobi_spectral_radius(n - 2, n - 2)),
            (
                UpdateMethod::GaussSeidel,
                gauss_seidel_spectral_radius(n - 2, n - 2),
            ),
        ] {
            let r = solve(&sp, method, &StopCondition::tolerance(1e-10, 500_000));
            let h = r.history().as_slice();
            // Contraction measured over the last stretch of the history.
            let a = h[h.len() - 200];
            let b = h[h.len() - 1];
            let measured = (b / a).powf(1.0 / 199.0);
            assert!(
                (measured - rho).abs() < 0.01,
                "{method}: measured contraction {measured:.4} vs theory {rho:.4}"
            );
        }
    }

    #[test]
    fn sor_at_omega_star_beats_theory_respecting_bound() {
        let n = 40;
        let sp = LaplaceProblem::builder(n, n)
            .boundary(DirichletBoundary::sine_top(1.0))
            .build()
            .unwrap()
            .discretize::<f64>();
        let omega = optimal_sor_omega(n - 2, n - 2);
        let stop = StopCondition::tolerance(1e-9, 500_000);
        let sor = solve(&sp, UpdateMethod::Sor { omega }, &stop).iterations();
        let gs = solve(&sp, UpdateMethod::GaussSeidel, &stop).iterations();
        // SOR at omega* should beat GS by roughly the ratio of log-rates;
        // demand a conservative 4x.
        assert!(sor * 4 < gs, "SOR {sor} vs GS {gs}");
    }

    #[test]
    fn iteration_prediction_sanity() {
        let rho = 0.99;
        let k = iterations_for_reduction(rho, 1e6);
        assert!((k - 1e6f64.ln() / -(0.99f64.ln())).abs() < 1e-9);
        assert!(k > 1000.0 && k < 2000.0);
    }

    #[test]
    #[should_panic(expected = "spectral radius")]
    fn rejects_bad_rho() {
        let _ = iterations_for_reduction(1.0, 10.0);
    }
}
