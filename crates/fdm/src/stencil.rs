//! The five-point stencil abstraction (paper Eq. 11) and its canonical
//! floating-point evaluation order.
//!
//! The paper abstracts the FDM update of every benchmark PDE as
//!
//! ```text
//! u'[i,j] = w_v*(u[i-1,j] + u[i+1,j]) + w_h*(u[i,j-1] + u[i,j+1])
//!           + w_s*u[i,j] + b[i,j]
//! ```
//!
//! The FDMAX PE evaluates this with exactly three multiplications:
//!
//! 1. `w_v * (top + bottom)` — the column-wise pair product,
//! 2. `w_s * center`        — the self term,
//! 3. `w_h * center`        — the row-wise partial product, computed once
//!    per input element and *shared* by both horizontal neighbours.
//!
//! Because floating-point addition is not associative, the PE's exact
//! operation order matters for bit-level reproducibility. [`stencil_point`]
//! is that canonical order; both the software solvers and the
//! cycle-accurate PE model call it (or mirror it operation-for-operation),
//! which is what lets the integration tests assert bitwise equality
//! between hardware and software results.

use crate::precision::Scalar;

/// Weights of the five-point stencil of paper Eq. (11).
///
/// `w_v` weighs the vertical neighbours (rows `i±1`, same column), `w_h`
/// the horizontal neighbours (columns `j±1`, same row) and `w_s` the
/// centre value of the previous iteration / time step.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct FivePointStencil<T> {
    /// Weight of the vertical neighbours `u[i-1,j]` and `u[i+1,j]`.
    pub w_v: T,
    /// Weight of the horizontal neighbours `u[i,j-1]` and `u[i,j+1]`.
    pub w_h: T,
    /// Weight of the centre element `u[i,j]`.
    pub w_s: T,
}

impl<T: Scalar> FivePointStencil<T> {
    /// Creates a stencil from the three weights.
    pub fn new(w_v: T, w_h: T, w_s: T) -> Self {
        FivePointStencil { w_v, w_h, w_s }
    }

    /// Converts the weights to another precision.
    pub fn convert<U: Scalar>(&self) -> FivePointStencil<U> {
        FivePointStencil {
            w_v: U::from_f64(self.w_v.to_f64()),
            w_h: U::from_f64(self.w_h.to_f64()),
            w_s: U::from_f64(self.w_s.to_f64()),
        }
    }

    /// `true` when the self-weight is exactly zero (Laplace/Poisson case),
    /// which lets hardware skip the `w_s` multiplier.
    pub fn has_self_term(&self) -> bool {
        self.w_s != T::ZERO
    }

    /// Number of multiplications a reuse-aware PE performs per output
    /// (see module docs): 2 when `w_s == 0`, 3 otherwise. The `w_h`
    /// partial product is counted once because it is shared.
    pub fn multiplications_per_output(&self) -> usize {
        if self.has_self_term() {
            3
        } else {
            2
        }
    }
}

/// The row-wise partial product a PE generates for its horizontal
/// neighbours: `w_h * center`.
///
/// Exposed separately so the PE model and [`stencil_point`] share the
/// exact same multiply.
#[inline]
pub fn row_partial<T: Scalar>(stencil: &FivePointStencil<T>, center: T) -> T {
    stencil.w_h * center
}

/// The column-wise product a PE accumulates locally:
/// `w_v*(top + bottom) + w_s*center + b`, in that exact order.
#[inline]
pub fn column_product<T: Scalar>(
    stencil: &FivePointStencil<T>,
    top: T,
    bottom: T,
    center: T,
    b: T,
) -> T {
    let pair = stencil.w_v * (top + bottom);
    let with_self = pair + stencil.w_s * center;
    with_self + b
}

/// Canonical evaluation of the five-point stencil at one grid point.
///
/// Operation order (matching the PE's two-stage pipeline):
///
/// ```text
/// stage 1: col = w_v*(top + bottom) + w_s*center + b
///          p_l = w_h*left   (produced by the left-neighbour PE)
///          p_r = w_h*right  (produced by the right-neighbour PE)
/// stage 2: out = (col + p_l) + p_r
/// ```
///
/// # Example
///
/// ```
/// use fdm::stencil::{stencil_point, FivePointStencil};
///
/// // Laplace with unit spacing: plain four-point average.
/// let s = FivePointStencil::new(0.25f64, 0.25, 0.0);
/// let u = stencil_point(&s, 1.0, 1.0, 1.0, 1.0, 9.0, 0.0);
/// assert_eq!(u, 1.0); // the centre value does not participate
/// ```
#[inline]
pub fn stencil_point<T: Scalar>(
    stencil: &FivePointStencil<T>,
    top: T,
    bottom: T,
    left: T,
    right: T,
    center: T,
    b: T,
) -> T {
    let col = column_product(stencil, top, bottom, center, b);
    let p_l = row_partial(stencil, left);
    let p_r = row_partial(stencil, right);
    (col + p_l) + p_r
}

/// The implicit operator `A = I - S` applied at one point:
/// `u[i,j] - stencil(u, b = 0)`.
///
/// The fixed-point iteration `u = S·u + c` and the linear system
/// `A·u = c` share the same solution, so the matrix-free Krylov and
/// multigrid paths apply `A` through the stencil itself — evaluated in
/// the same canonical order as [`stencil_point`], which keeps
/// `apply_point(...) == -fixed_point_residual(..., b = 0)` an exact
/// (sign-flip) identity.
#[inline]
pub fn apply_point<T: Scalar>(
    stencil: &FivePointStencil<T>,
    top: T,
    bottom: T,
    left: T,
    right: T,
    center: T,
) -> T {
    center - stencil_point(stencil, top, bottom, left, right, center, T::ZERO)
}

/// Residual of the implicit steady-state equation at one point:
/// `stencil(u) - u[i,j]` — zero exactly at a fixed point of the iteration.
#[inline]
pub fn fixed_point_residual<T: Scalar>(
    stencil: &FivePointStencil<T>,
    top: T,
    bottom: T,
    left: T,
    right: T,
    center: T,
    b: T,
) -> T {
    stencil_point(stencil, top, bottom, left, right, center, b) - center
}

#[cfg(test)]
mod tests {
    use super::*;

    fn laplace() -> FivePointStencil<f32> {
        FivePointStencil::new(0.25, 0.25, 0.0)
    }

    #[test]
    fn stencil_point_matches_manual_order() {
        let s = FivePointStencil::new(0.3f32, 0.2, 0.1);
        let (t, bo, l, r, c, b) = (1.1f32, 2.2, 3.3, 4.4, 5.5, 0.7);
        // Reproduce the documented order by hand.
        let col = 0.3f32 * (t + bo) + 0.1 * c + b;
        let expect = (col + 0.2 * l) + 0.2 * r;
        assert_eq!(
            stencil_point(&s, t, bo, l, r, c, b).to_bits(),
            expect.to_bits()
        );
    }

    #[test]
    fn column_product_order_is_pair_self_offset() {
        let s = FivePointStencil::new(0.5f32, 0.0, 0.25);
        let got = column_product(&s, 1e-8, 1.0, 4.0, 1e8);
        let expect = (0.5f32 * (1e-8 + 1.0) + 0.25 * 4.0) + 1e8;
        assert_eq!(got.to_bits(), expect.to_bits());
    }

    #[test]
    fn row_partial_is_shared_multiply() {
        let s = laplace();
        assert_eq!(row_partial(&s, 8.0), 2.0);
    }

    #[test]
    fn constant_field_is_laplace_fixed_point() {
        let s = laplace();
        let u = 3.75f32;
        let out = stencil_point(&s, u, u, u, u, u, 0.0);
        assert_eq!(out, u);
        assert_eq!(fixed_point_residual(&s, u, u, u, u, u, 0.0), 0.0);
    }

    #[test]
    fn apply_point_is_negated_zero_offset_residual() {
        let s = FivePointStencil::new(0.3f64, 0.2, 0.1);
        let (t, bo, l, r, c) = (1.1f64, 2.2, 3.3, 4.4, 5.5);
        let a = apply_point(&s, t, bo, l, r, c);
        let fr = fixed_point_residual(&s, t, bo, l, r, c, 0.0);
        assert_eq!(a.to_bits(), (-fr).to_bits());
    }

    #[test]
    fn multiplication_counting() {
        assert_eq!(laplace().multiplications_per_output(), 2);
        let heat = FivePointStencil::new(0.2f32, 0.2, 0.2);
        assert_eq!(heat.multiplications_per_output(), 3);
        assert!(heat.has_self_term());
        assert!(!laplace().has_self_term());
    }

    #[test]
    fn convert_preserves_values_in_range() {
        let s = FivePointStencil::new(0.25f64, 0.125, 0.5);
        let s32: FivePointStencil<f32> = s.convert();
        assert_eq!(s32.w_v, 0.25);
        assert_eq!(s32.w_h, 0.125);
        assert_eq!(s32.w_s, 0.5);
    }

    #[test]
    fn offset_participates_additively() {
        let s = laplace();
        let base = stencil_point(&s, 1.0, 2.0, 3.0, 4.0, 0.0, 0.0);
        let with_b = stencil_point(&s, 1.0, 2.0, 3.0, 4.0, 0.0, 1.5);
        assert!((with_b - base - 1.5).abs() < 1e-6);
    }
}
