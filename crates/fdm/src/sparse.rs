//! Compressed sparse row (CSR) matrices and the FDM stencil-matrix
//! assembly.
//!
//! The CPU formulation the paper describes (§2.2) solves `A·u = b` where
//! `A` is the `MN x MN` five-point stencil matrix. The Krylov baselines —
//! `MemAccel` (BiCG-STAB) and Alrescha (PCG) — operate on this sparse system,
//! so their iteration counts are measured here on the exact same matrix.

use crate::grid::Grid2D;
use crate::pde::{OffsetField, ProblemError, StencilProblem};
use crate::precision::Scalar;
use core::fmt;

/// Estimated off-chip footprint, in bytes, of the assembled CSR system
/// for a `rows x cols` grid (interior unknowns only): five-point rows
/// with boundary-adjacent cuts (`nnz = 5·ir·ic - 2·ir - 2·ic`), 8-byte
/// values + 8-byte column indices per entry, plus the row-pointer array.
///
/// Used by the `FDX014` lint to flag Krylov configurations whose matrix
/// would not fit the modeled DRAM budget — the matrix-free operator path
/// needs none of it.
#[must_use]
pub fn csr_footprint_bytes(rows: usize, cols: usize) -> u64 {
    let ir = rows.saturating_sub(2) as u64;
    let ic = cols.saturating_sub(2) as u64;
    if ir == 0 || ic == 0 {
        return 0;
    }
    let nnz = 5 * ir * ic - 2 * ir - 2 * ic;
    let entry_bytes = 16; // 8 B value + 8 B column index.
    let row_ptr_bytes = (ir * ic + 1) * 8;
    nnz * entry_bytes + row_ptr_bytes
}

/// A sparse matrix in compressed sparse row format over `f64`.
///
/// # Example
///
/// ```
/// use fdm::sparse::CsrMatrix;
///
/// // [[2, 1], [0, 3]]
/// let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 2.0), (0, 1, 1.0), (1, 1, 3.0)]);
/// let y = m.spmv(&[1.0, 1.0]);
/// assert_eq!(y, vec![3.0, 3.0]);
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_ptr: Vec<usize>,
    col_idx: Vec<usize>,
    values: Vec<f64>,
}

impl CsrMatrix {
    /// Builds a CSR matrix from `(row, col, value)` triplets.
    ///
    /// Duplicate entries are summed; zero-valued entries are kept (callers
    /// that care can prune them).
    ///
    /// # Panics
    ///
    /// Panics if any triplet is out of bounds.
    pub fn from_triplets(rows: usize, cols: usize, triplets: &[(usize, usize, f64)]) -> Self {
        let mut per_row: Vec<Vec<(usize, f64)>> = vec![Vec::new(); rows];
        for &(r, c, v) in triplets {
            assert!(r < rows && c < cols, "triplet ({r},{c}) out of bounds");
            per_row[r].push((c, v));
        }
        let mut row_ptr = Vec::with_capacity(rows + 1);
        let mut col_idx = Vec::new();
        let mut values = Vec::new();
        row_ptr.push(0);
        for row in &mut per_row {
            row.sort_unstable_by_key(|&(c, _)| c);
            let mut k = 0;
            while k < row.len() {
                let c = row[k].0;
                let mut v = 0.0;
                while k < row.len() && row[k].0 == c {
                    v += row[k].1;
                    k += 1;
                }
                col_idx.push(c);
                values.push(v);
            }
            row_ptr.push(col_idx.len());
        }
        CsrMatrix {
            rows,
            cols,
            row_ptr,
            col_idx,
            values,
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored entries.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// Sparse matrix-vector product `y = A·x`.
    ///
    /// Prefer [`CsrMatrix::spmv_into`] in iteration loops — this variant
    /// allocates a fresh vector per call.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols`.
    #[must_use]
    pub fn spmv(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "spmv dimension mismatch");
        let mut y = vec![0.0; self.rows];
        self.spmv_into(x, &mut y);
        y
    }

    /// Sparse matrix-vector product into a caller-provided buffer.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != cols` or `y.len() != rows`.
    #[allow(clippy::needless_range_loop)]
    pub fn spmv_into(&self, x: &[f64], y: &mut [f64]) {
        assert_eq!(x.len(), self.cols, "spmv dimension mismatch");
        assert_eq!(y.len(), self.rows, "spmv output dimension mismatch");
        for r in 0..self.rows {
            let mut acc = 0.0;
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                acc += self.values[k] * x[self.col_idx[k]];
            }
            y[r] = acc;
        }
    }

    /// The diagonal of the matrix (zeros where a diagonal entry is absent).
    #[allow(clippy::needless_range_loop)]
    pub fn diagonal(&self) -> Vec<f64> {
        let mut d = vec![0.0; self.rows.min(self.cols)];
        for r in 0..d.len() {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                if self.col_idx[k] == r {
                    d[r] = self.values[k];
                }
            }
        }
        d
    }

    /// Returns entry `(r, c)`, zero when not stored.
    pub fn get(&self, r: usize, c: usize) -> f64 {
        if r >= self.rows {
            return 0.0;
        }
        for k in self.row_ptr[r]..self.row_ptr[r + 1] {
            if self.col_idx[k] == c {
                return self.values[k];
            }
        }
        0.0
    }

    /// `true` when the matrix is (exactly) symmetric.
    pub fn is_symmetric(&self) -> bool {
        if self.rows != self.cols {
            return false;
        }
        for r in 0..self.rows {
            for k in self.row_ptr[r]..self.row_ptr[r + 1] {
                let c = self.col_idx[k];
                if (self.get(c, r) - self.values[k]).abs() > 0.0 {
                    return false;
                }
            }
        }
        true
    }
}

impl fmt::Display for CsrMatrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "CsrMatrix {}x{} ({} nonzeros)",
            self.rows,
            self.cols,
            self.nnz()
        )
    }
}

/// The linear system `A·u = rhs` assembled from a steady-state
/// [`StencilProblem`], over the interior unknowns only (boundary values
/// folded into the right-hand side).
#[derive(Clone, Debug)]
pub struct StencilSystem {
    /// The assembled sparse matrix (interior unknowns, row-major order).
    pub matrix: CsrMatrix,
    /// Right-hand side including boundary contributions.
    pub rhs: Vec<f64>,
    /// Interior rows (`grid rows - 2`).
    pub interior_rows: usize,
    /// Interior columns (`grid cols - 2`).
    pub interior_cols: usize,
}

impl StencilSystem {
    /// Assembles `A·u = rhs` from a steady-state stencil problem.
    ///
    /// The Jacobi fixed point `u = w_v(up+down) + w_h(left+right) + c`
    /// corresponds to the linear system
    /// `u - w_v(up+down) - w_h(left+right) = c`, i.e. a unit diagonal with
    /// `-w_v`/`-w_h` off-diagonals. Known boundary values move to the RHS.
    ///
    /// # Errors
    ///
    /// [`ProblemError::GridTooSmall`] when the grid has no interior
    /// (fewer than 3 rows or columns — e.g. a 1×N or N×1 strip), which
    /// would otherwise underflow the interior dimensions.
    ///
    /// # Panics
    ///
    /// Panics if the problem is time-dependent (has a
    /// [`OffsetField::ScaledPrevField`] offset or a non-zero self weight),
    /// since those do not define a steady-state linear system.
    pub fn assemble<T: Scalar>(problem: &StencilProblem<T>) -> Result<StencilSystem, ProblemError> {
        assert!(
            !matches!(problem.offset, OffsetField::ScaledPrevField { .. }),
            "cannot assemble a steady-state system from a time-dependent problem"
        );
        assert!(
            problem.stencil.w_s == T::ZERO,
            "steady-state assembly requires w_s == 0"
        );
        let rows = problem.rows();
        let cols = problem.cols();
        if rows < 3 || cols < 3 {
            return Err(ProblemError::GridTooSmall { rows, cols });
        }
        let ir = rows - 2;
        let ic = cols - 2;
        let w_v = problem.stencil.w_v.to_f64();
        let w_h = problem.stencil.w_h.to_f64();
        let idx = |i: usize, j: usize| (i - 1) * ic + (j - 1);
        let boundary = &problem.initial;

        let offset_at = |i: usize, j: usize| -> f64 {
            match &problem.offset {
                OffsetField::None => 0.0,
                OffsetField::Static(c) => c[(i, j)].to_f64(),
                OffsetField::ScaledPrevField { .. } => unreachable!(),
            }
        };

        let mut triplets = Vec::with_capacity(5 * ir * ic);
        let mut rhs = vec![0.0; ir * ic];
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                let r = idx(i, j);
                triplets.push((r, r, 1.0));
                rhs[r] += offset_at(i, j);
                // Up neighbour.
                if i == 1 {
                    rhs[r] += w_v * boundary[(0, j)].to_f64();
                } else {
                    triplets.push((r, idx(i - 1, j), -w_v));
                }
                // Down neighbour.
                if i == rows - 2 {
                    rhs[r] += w_v * boundary[(rows - 1, j)].to_f64();
                } else {
                    triplets.push((r, idx(i + 1, j), -w_v));
                }
                // Left neighbour.
                if j == 1 {
                    rhs[r] += w_h * boundary[(i, 0)].to_f64();
                } else {
                    triplets.push((r, idx(i, j - 1), -w_h));
                }
                // Right neighbour.
                if j == cols - 2 {
                    rhs[r] += w_h * boundary[(i, cols - 1)].to_f64();
                } else {
                    triplets.push((r, idx(i, j + 1), -w_h));
                }
            }
        }
        Ok(StencilSystem {
            matrix: CsrMatrix::from_triplets(ir * ic, ir * ic, &triplets),
            rhs,
            interior_rows: ir,
            interior_cols: ic,
        })
    }

    /// Assembles just the operator matrix `A = I - S` over the interior
    /// unknowns — diagonal `1 - w_s`, off-diagonals `-w_v`/`-w_h` — with
    /// no right-hand side and no steady-state restriction, so it serves
    /// as a CSR differential oracle for the matrix-free operator path of
    /// *any* problem kind (Laplace, Poisson, Heat, Wave).
    ///
    /// # Errors
    ///
    /// [`ProblemError::GridTooSmall`] when the grid has no interior.
    pub fn operator_matrix<T: Scalar>(
        problem: &StencilProblem<T>,
    ) -> Result<CsrMatrix, ProblemError> {
        let rows = problem.rows();
        let cols = problem.cols();
        if rows < 3 || cols < 3 {
            return Err(ProblemError::GridTooSmall { rows, cols });
        }
        let ir = rows - 2;
        let ic = cols - 2;
        let w_v = problem.stencil.w_v.to_f64();
        let w_h = problem.stencil.w_h.to_f64();
        let diag = 1.0 - problem.stencil.w_s.to_f64();
        let idx = |i: usize, j: usize| (i - 1) * ic + (j - 1);
        let mut triplets = Vec::with_capacity(5 * ir * ic);
        for i in 1..rows - 1 {
            for j in 1..cols - 1 {
                let r = idx(i, j);
                triplets.push((r, r, diag));
                if i > 1 {
                    triplets.push((r, idx(i - 1, j), -w_v));
                }
                if i < rows - 2 {
                    triplets.push((r, idx(i + 1, j), -w_v));
                }
                if j > 1 {
                    triplets.push((r, idx(i, j - 1), -w_h));
                }
                if j < cols - 2 {
                    triplets.push((r, idx(i, j + 1), -w_h));
                }
            }
        }
        Ok(CsrMatrix::from_triplets(ir * ic, ir * ic, &triplets))
    }

    /// Scatters an interior solution vector back onto a full grid whose
    /// boundary ring comes from `boundary`.
    ///
    /// # Panics
    ///
    /// Panics if `solution.len()` does not match the interior size.
    pub fn to_grid(&self, solution: &[f64], boundary: &Grid2D<f64>) -> Grid2D<f64> {
        assert_eq!(solution.len(), self.interior_rows * self.interior_cols);
        let mut g = boundary.clone();
        for i in 0..self.interior_rows {
            for j in 0..self.interior_cols {
                g[(i + 1, j + 1)] = solution[i * self.interior_cols + j];
            }
        }
        g
    }

    /// Residual norm `||rhs - A·u||_2`.
    pub fn residual_norm(&self, u: &[f64]) -> f64 {
        let mut au = vec![0.0; self.rhs.len()];
        self.matrix.spmv_into(u, &mut au);
        au.iter()
            .zip(&self.rhs)
            .map(|(a, b)| (b - a) * (b - a))
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boundary::DirichletBoundary;
    use crate::pde::{LaplaceProblem, PoissonProblem};

    #[test]
    fn from_triplets_sorts_and_sums_duplicates() {
        let m =
            CsrMatrix::from_triplets(2, 3, &[(1, 2, 1.0), (1, 0, 2.0), (0, 1, 3.0), (1, 2, 0.5)]);
        assert_eq!(m.nnz(), 3);
        assert_eq!(m.get(1, 2), 1.5);
        assert_eq!(m.get(1, 0), 2.0);
        assert_eq!(m.get(0, 1), 3.0);
        assert_eq!(m.get(0, 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn triplet_bounds_checked() {
        let _ = CsrMatrix::from_triplets(2, 2, &[(2, 0, 1.0)]);
    }

    #[test]
    fn spmv_identity_and_dimensions() {
        let eye = CsrMatrix::from_triplets(3, 3, &[(0, 0, 1.0), (1, 1, 1.0), (2, 2, 1.0)]);
        let x = vec![4.0, 5.0, 6.0];
        assert_eq!(eye.spmv(&x), x);
        assert_eq!(eye.diagonal(), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    #[should_panic(expected = "dimension mismatch")]
    fn spmv_checks_dims() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        let _ = m.spmv(&[1.0]);
    }

    #[test]
    fn laplace_system_is_symmetric_with_unit_diagonal() {
        let p = LaplaceProblem::builder(6, 7)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        assert_eq!(sys.matrix.rows(), 4 * 5);
        assert!(sys.matrix.is_symmetric());
        for d in sys.matrix.diagonal() {
            assert_eq!(d, 1.0);
        }
        // Interior row count: 4 off-diagonals for a fully interior point.
        // nnz = 5 per point minus boundary-adjacent cuts.
        assert!(sys.matrix.nnz() < 5 * 20);
        assert!(sys.matrix.nnz() > 3 * 20);
    }

    #[test]
    fn boundary_contributions_land_in_rhs() {
        let p = LaplaceProblem::builder(4, 4)
            .boundary(DirichletBoundary::hot_top(2.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        // Interior is 2x2. Points adjacent to the top edge see w_v * 2.0.
        assert_eq!(sys.rhs[0], 0.25 * 2.0);
        assert_eq!(sys.rhs[1], 0.25 * 2.0);
        assert_eq!(sys.rhs[2], 0.0);
        assert_eq!(sys.rhs[3], 0.0);
    }

    #[test]
    fn poisson_offset_lands_in_rhs() {
        let p = PoissonProblem::builder(4, 4)
            .source_fn(|_, _| 4.0)
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        // c = -w_b * b = -(1/4)*4 = -1 at every interior point.
        for &v in &sys.rhs {
            assert!((v + 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn solving_the_system_matches_fixed_point() {
        // For a tiny grid, iterate Jacobi in matrix form u <- rhs + (I-A)u
        // and check the residual norm reaches ~0; validates assembly.
        let p = LaplaceProblem::builder(5, 5)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let n = sys.rhs.len();
        let mut u = vec![0.0; n];
        for _ in 0..2000 {
            let au = sys.matrix.spmv(&u);
            for k in 0..n {
                u[k] += sys.rhs[k] - au[k];
            }
        }
        assert!(sys.residual_norm(&u) < 1e-10);
        // Interior values of the heated-lid problem are strictly inside (0, 1).
        for &v in &u {
            assert!(v > 0.0 && v < 1.0);
        }
    }

    #[test]
    fn to_grid_scatters_interior() {
        let p = LaplaceProblem::builder(4, 5).build().unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let sol: Vec<f64> = (0..sys.rhs.len()).map(|k| k as f64).collect();
        let g = sys.to_grid(&sol, &sp.initial);
        assert_eq!(g[(1, 1)], 0.0);
        assert_eq!(g[(2, 3)], 5.0);
        assert_eq!(g[(0, 0)], 0.0, "boundary from the initial grid");
    }

    #[test]
    fn display_reports_shape() {
        let m = CsrMatrix::from_triplets(2, 2, &[(0, 0, 1.0)]);
        assert_eq!(m.to_string(), "CsrMatrix 2x2 (1 nonzeros)");
    }

    fn degenerate_problem(rows: usize, cols: usize) -> StencilProblem<f64> {
        use crate::pde::{PdeKind, RunMode};
        use crate::stencil::FivePointStencil;
        StencilProblem {
            kind: PdeKind::Laplace,
            stencil: FivePointStencil::new(0.25, 0.25, 0.0),
            offset: OffsetField::None,
            initial: Grid2D::zeros(rows, cols),
            prev_initial: None,
            mode: RunMode::FixedSteps(1),
        }
    }

    #[test]
    fn assemble_rejects_one_by_n_grid() {
        let err = StencilSystem::assemble(&degenerate_problem(1, 8)).unwrap_err();
        assert!(matches!(
            err,
            ProblemError::GridTooSmall { rows: 1, cols: 8 }
        ));
    }

    #[test]
    fn assemble_rejects_n_by_one_grid() {
        let err = StencilSystem::assemble(&degenerate_problem(8, 1)).unwrap_err();
        assert!(matches!(
            err,
            ProblemError::GridTooSmall { rows: 8, cols: 1 }
        ));
        assert!(StencilSystem::assemble(&degenerate_problem(2, 9)).is_err());
        assert!(StencilSystem::operator_matrix(&degenerate_problem(1, 8)).is_err());
        assert!(StencilSystem::assemble(&degenerate_problem(3, 3)).is_ok());
    }

    #[test]
    fn operator_matrix_matches_assembled_matrix_for_steady_problems() {
        let p = LaplaceProblem::builder(6, 7)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let op = StencilSystem::operator_matrix(&sp).unwrap();
        assert_eq!(op, sys.matrix);
    }

    #[test]
    fn operator_matrix_carries_self_weight_on_the_diagonal() {
        use crate::pde::HeatProblem;
        let sp = HeatProblem::builder(6, 6)
            .alpha(0.1)
            .build()
            .unwrap()
            .discretize::<f64>();
        assert!(sp.stencil.w_s != 0.0, "heat has a self term");
        let op = StencilSystem::operator_matrix(&sp).unwrap();
        let want = 1.0 - sp.stencil.w_s;
        for d in op.diagonal() {
            assert!((d - want).abs() < 1e-15);
        }
    }

    #[test]
    fn footprint_estimate_matches_actual_assembly() {
        for (rows, cols) in [(6usize, 7usize), (9, 9), (12, 5)] {
            let p = LaplaceProblem::builder(rows, cols).build().unwrap();
            let sys = StencilSystem::assemble(&p.discretize::<f64>()).unwrap();
            let nnz = sys.matrix.nnz() as u64;
            let n = (sys.matrix.rows() + 1) as u64;
            assert_eq!(csr_footprint_bytes(rows, cols), nnz * 16 + n * 8);
        }
        assert_eq!(csr_footprint_bytes(2, 100), 0);
        assert_eq!(csr_footprint_bytes(1, 1), 0);
    }
}
