//! PDE problem definitions and their FDM discretizations.
//!
//! The four benchmark equations of the paper (Table 1) are each a concrete
//! problem type with a builder; [`discretize`](LaplaceProblem::discretize)
//! lowers every one of them to the shared [`StencilProblem`] form — the
//! five-point stencil abstraction of paper Eq. (11) — which is what both
//! the software solvers and the FDMAX accelerator consume.
//!
//! Grid convention: row index `i` walks the vertical (y) direction with
//! spacing `dy`; column index `j` walks the horizontal (x) direction with
//! spacing `dx`.

use crate::boundary::DirichletBoundary;
use crate::grid::Grid2D;
use crate::precision::Scalar;
use crate::stencil::FivePointStencil;
use core::fmt;

/// Which benchmark equation a [`StencilProblem`] was derived from.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PdeKind {
    /// `∇²u = 0` — steady heat / incompressible potential flow.
    Laplace,
    /// `∇²u = b(x, y)` — steady flow with sources or sinks.
    Poisson,
    /// `∂u/∂t = α ∇²u` — transient heat conduction.
    Heat,
    /// `∂²u/∂t² = c² ∇²u` — wave motion.
    Wave,
}

impl PdeKind {
    /// Mathematical class of the second-order PDE (sign of `b² - 4ac`).
    pub fn class(self) -> PdeClass {
        match self {
            PdeKind::Laplace | PdeKind::Poisson => PdeClass::Elliptic,
            PdeKind::Heat => PdeClass::Parabolic,
            PdeKind::Wave => PdeClass::Hyperbolic,
        }
    }

    /// `true` for equations solved to a stop condition rather than for a
    /// fixed number of time steps.
    pub fn is_steady_state(self) -> bool {
        matches!(self, PdeKind::Laplace | PdeKind::Poisson)
    }

    /// All four benchmark kinds, in the paper's Table 1 order.
    pub const ALL: [PdeKind; 4] = [
        PdeKind::Laplace,
        PdeKind::Poisson,
        PdeKind::Heat,
        PdeKind::Wave,
    ];
}

impl fmt::Display for PdeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            PdeKind::Laplace => "Laplace",
            PdeKind::Poisson => "Poisson",
            PdeKind::Heat => "Heat",
            PdeKind::Wave => "Wave",
        };
        f.write_str(name)
    }
}

/// Classification of second-order PDEs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PdeClass {
    /// `b² - 4ac < 0` (Laplace, Poisson).
    Elliptic,
    /// `b² - 4ac = 0` (Heat).
    Parabolic,
    /// `b² - 4ac > 0` (Wave).
    Hyperbolic,
}

/// Errors produced while building or discretizing a PDE problem.
#[derive(Clone, Debug, PartialEq)]
pub enum ProblemError {
    /// The grid needs at least 3 points per dimension to have an interior.
    GridTooSmall {
        /// Requested rows.
        rows: usize,
        /// Requested columns.
        cols: usize,
    },
    /// Grid spacings and time steps must be positive and finite.
    NonPositiveParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// Its value.
        value: f64,
    },
    /// An explicit time-stepping scheme violated its stability bound.
    UnstableTimeStep {
        /// `r_x + r_y` for heat, `r_X + r_Y` for wave.
        ratio: f64,
        /// The scheme's stability limit for that ratio.
        limit: f64,
    },
    /// A supplied field grid does not match the problem dimensions.
    ShapeMismatch {
        /// Expected `(rows, cols)`.
        expected: (usize, usize),
        /// Supplied `(rows, cols)`.
        got: (usize, usize),
    },
}

impl fmt::Display for ProblemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProblemError::GridTooSmall { rows, cols } => {
                write!(f, "grid {rows}x{cols} has no interior (need at least 3x3)")
            }
            ProblemError::NonPositiveParameter { name, value } => {
                write!(
                    f,
                    "parameter {name} must be positive and finite, got {value}"
                )
            }
            ProblemError::UnstableTimeStep { ratio, limit } => {
                write!(
                    f,
                    "explicit scheme unstable: ratio {ratio:.4} exceeds limit {limit}"
                )
            }
            ProblemError::ShapeMismatch { expected, got } => {
                write!(f, "field shape {got:?} does not match grid {expected:?}")
            }
        }
    }
}

impl std::error::Error for ProblemError {}

fn check_dims(rows: usize, cols: usize) -> Result<(), ProblemError> {
    if rows < 3 || cols < 3 {
        Err(ProblemError::GridTooSmall { rows, cols })
    } else {
        Ok(())
    }
}

fn check_positive(name: &'static str, value: f64) -> Result<(), ProblemError> {
    if value > 0.0 && value.is_finite() {
        Ok(())
    } else {
        Err(ProblemError::NonPositiveParameter { name, value })
    }
}

/// The offset term `b[i,j]` of paper Eq. (11).
#[derive(Clone, Debug, PartialEq)]
pub enum OffsetField<T> {
    /// No offset (Laplace, Heat without sources): hardware skips the
    /// `OffsetBuffer` read entirely.
    None,
    /// A static field, constant across iterations (Poisson's folded source
    /// term `c[i,j]`).
    Static(Grid2D<T>),
    /// The offset is `scale * U^{k-1}` — the previous *previous* field.
    /// Used by the wave equation with `scale = -1`.
    ScaledPrevField {
        /// Multiplier applied to `U^{k-1}` when it is used as the offset.
        scale: T,
    },
}

impl<T: Scalar> OffsetField<T> {
    /// `true` when the PE must read an offset operand each cycle.
    pub fn requires_buffer(&self) -> bool {
        !matches!(self, OffsetField::None)
    }

    /// Converts the offset description to another precision.
    pub fn convert<U: Scalar>(&self) -> OffsetField<U> {
        match self {
            OffsetField::None => OffsetField::None,
            OffsetField::Static(g) => OffsetField::Static(g.convert()),
            OffsetField::ScaledPrevField { scale } => OffsetField::ScaledPrevField {
                scale: U::from_f64(scale.to_f64()),
            },
        }
    }
}

/// How long to iterate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RunMode {
    /// Iterate until the L2 norm of `U^{k+1} - U^k` drops below `tolerance`
    /// (paper §2.2.5), giving up after `max_iterations`.
    Converge {
        /// Stop threshold on `||U^{k+1} - U^k||_2`.
        tolerance: f64,
        /// Iteration budget.
        max_iterations: usize,
    },
    /// Perform exactly this many stencil applications (time steps).
    FixedSteps(usize),
}

/// A PDE lowered to the five-point stencil form consumed by every solver
/// and by the FDMAX accelerator.
#[derive(Clone, Debug, PartialEq)]
pub struct StencilProblem<T> {
    /// Which equation this came from.
    pub kind: PdeKind,
    /// Stencil weights `w_v`, `w_h`, `w_s`.
    pub stencil: FivePointStencil<T>,
    /// Offset term.
    pub offset: OffsetField<T>,
    /// `U^0` (for the wave equation, `U^1`) with boundary values applied.
    pub initial: Grid2D<T>,
    /// `U^{-1}` history field — `Some` only for the wave equation (`U^0`).
    pub prev_initial: Option<Grid2D<T>>,
    /// Convergence or fixed-step run mode.
    pub mode: RunMode,
}

impl<T: Scalar> StencilProblem<T> {
    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.initial.rows()
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.initial.cols()
    }

    /// `true` when the problem defines a steady-state (elliptic) linear
    /// system `A·u = c`: no history-term offset and a zero self weight.
    /// Krylov and multigrid solvers target exactly these problems.
    pub fn is_steady_state(&self) -> bool {
        !matches!(self.offset, OffsetField::ScaledPrevField { .. }) && self.stencil.w_s == T::ZERO
    }

    /// Converts the whole problem to another precision — the mechanism of
    /// the Fig. 1(a) precision study.
    pub fn convert<U: Scalar>(&self) -> StencilProblem<U> {
        StencilProblem {
            kind: self.kind,
            stencil: self.stencil.convert(),
            offset: self.offset.convert(),
            initial: self.initial.convert(),
            prev_initial: self.prev_initial.as_ref().map(Grid2D::convert),
            mode: self.mode,
        }
    }
}

// ---------------------------------------------------------------------------
// Laplace
// ---------------------------------------------------------------------------

/// The Laplace equation `∇²u = 0` with Dirichlet boundary data.
///
/// # Example
///
/// ```
/// use fdm::pde::LaplaceProblem;
/// use fdm::boundary::DirichletBoundary;
///
/// let p = LaplaceProblem::builder(100, 100)
///     .boundary(DirichletBoundary::hot_top(1.0))
///     .build()?;
/// let sp = p.discretize::<f32>();
/// assert_eq!(sp.stencil.w_v, 0.25);
/// # Ok::<(), fdm::pde::ProblemError>(())
/// ```
#[derive(Clone, Debug, PartialEq)]
pub struct LaplaceProblem {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    boundary: DirichletBoundary,
    tolerance: f64,
    max_iterations: usize,
}

/// Builder for [`LaplaceProblem`].
#[derive(Clone, Debug)]
pub struct LaplaceBuilder {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    boundary: DirichletBoundary,
    tolerance: f64,
    max_iterations: usize,
}

impl LaplaceProblem {
    /// Starts building a Laplace problem on a `rows x cols` grid.
    pub fn builder(rows: usize, cols: usize) -> LaplaceBuilder {
        LaplaceBuilder {
            rows,
            cols,
            dx: 1.0,
            dy: 1.0,
            boundary: DirichletBoundary::zero(),
            tolerance: 1e-4,
            max_iterations: 1_000_000,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the boundary data.
    pub fn boundary(&self) -> &DirichletBoundary {
        &self.boundary
    }

    /// Lowers to the five-point stencil form at precision `T`.
    pub fn discretize<T: Scalar>(&self) -> StencilProblem<T> {
        let (w_v, w_h, _) = elliptic_weights(self.dx, self.dy);
        let mut initial = Grid2D::<T>::zeros(self.rows, self.cols);
        self.boundary.apply(&mut initial);
        StencilProblem {
            kind: PdeKind::Laplace,
            stencil: FivePointStencil::new(T::from_f64(w_v), T::from_f64(w_h), T::ZERO),
            offset: OffsetField::None,
            initial,
            prev_initial: None,
            mode: RunMode::Converge {
                tolerance: self.tolerance,
                max_iterations: self.max_iterations,
            },
        }
    }
}

impl LaplaceBuilder {
    /// Sets the grid spacings (default 1.0 each).
    pub fn spacing(mut self, dx: f64, dy: f64) -> Self {
        self.dx = dx;
        self.dy = dy;
        self
    }

    /// Sets the Dirichlet boundary data (default all-zero).
    pub fn boundary(mut self, boundary: DirichletBoundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the stop condition (default `1e-4`, 1 000 000 iterations).
    pub fn stop(mut self, tolerance: f64, max_iterations: usize) -> Self {
        self.tolerance = tolerance;
        self.max_iterations = max_iterations;
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] when the grid has no interior or a spacing
    /// or tolerance is not positive.
    pub fn build(self) -> Result<LaplaceProblem, ProblemError> {
        check_dims(self.rows, self.cols)?;
        check_positive("dx", self.dx)?;
        check_positive("dy", self.dy)?;
        check_positive("tolerance", self.tolerance)?;
        Ok(LaplaceProblem {
            rows: self.rows,
            cols: self.cols,
            dx: self.dx,
            dy: self.dy,
            boundary: self.boundary,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
        })
    }
}

/// Elliptic Jacobi weights (paper Eq. 6): `(w_v, w_h, w_b)` with
/// `w_v = dx²/D`, `w_h = dy²/D`, `w_b = dx²·dy²/D`, `D = 2(dx²+dy²)`.
///
/// `w_b` is the magnitude folded into the Poisson offset
/// `c[i,j] = -w_b * b[i,j]`.
pub fn elliptic_weights(dx: f64, dy: f64) -> (f64, f64, f64) {
    let dx2 = dx * dx;
    let dy2 = dy * dy;
    let denom = 2.0 * (dx2 + dy2);
    (dx2 / denom, dy2 / denom, dx2 * dy2 / denom)
}

// ---------------------------------------------------------------------------
// Poisson
// ---------------------------------------------------------------------------

/// The Poisson equation `∇²u = b(x, y)` with Dirichlet boundary data.
#[derive(Clone, Debug, PartialEq)]
pub struct PoissonProblem {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    boundary: DirichletBoundary,
    source: Grid2D<f64>,
    tolerance: f64,
    max_iterations: usize,
}

/// Builder for [`PoissonProblem`].
#[derive(Clone, Debug)]
pub struct PoissonBuilder {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    boundary: DirichletBoundary,
    source: Option<Grid2D<f64>>,
    tolerance: f64,
    max_iterations: usize,
}

impl PoissonProblem {
    /// Starts building a Poisson problem on a `rows x cols` grid.
    pub fn builder(rows: usize, cols: usize) -> PoissonBuilder {
        PoissonBuilder {
            rows,
            cols,
            dx: 1.0,
            dy: 1.0,
            boundary: DirichletBoundary::zero(),
            source: None,
            tolerance: 1e-4,
            max_iterations: 1_000_000,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Borrow the source field `b(x, y)`.
    pub fn source(&self) -> &Grid2D<f64> {
        &self.source
    }

    /// Lowers to the five-point stencil form at precision `T`.
    ///
    /// The source is folded into a static offset `c[i,j] = -w_b·b[i,j]`
    /// as in paper Eq. (6), so each PE consumes it as a plain additive
    /// operand from the `OffsetBuffer`.
    pub fn discretize<T: Scalar>(&self) -> StencilProblem<T> {
        let (w_v, w_h, w_b) = elliptic_weights(self.dx, self.dy);
        let mut initial = Grid2D::<T>::zeros(self.rows, self.cols);
        self.boundary.apply(&mut initial);
        let offset = Grid2D::from_fn(self.rows, self.cols, |i, j| {
            T::from_f64(-w_b * self.source[(i, j)])
        });
        StencilProblem {
            kind: PdeKind::Poisson,
            stencil: FivePointStencil::new(T::from_f64(w_v), T::from_f64(w_h), T::ZERO),
            offset: OffsetField::Static(offset),
            initial,
            prev_initial: None,
            mode: RunMode::Converge {
                tolerance: self.tolerance,
                max_iterations: self.max_iterations,
            },
        }
    }
}

impl PoissonBuilder {
    /// Sets the grid spacings (default 1.0 each).
    pub fn spacing(mut self, dx: f64, dy: f64) -> Self {
        self.dx = dx;
        self.dy = dy;
        self
    }

    /// Sets the Dirichlet boundary data (default all-zero).
    pub fn boundary(mut self, boundary: DirichletBoundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the source field `b(x, y)` sampled at the grid points.
    pub fn source(mut self, source: Grid2D<f64>) -> Self {
        self.source = Some(source);
        self
    }

    /// Sets the source from a function of normalized `(x, y) in [0,1]²`.
    pub fn source_fn(mut self, f: impl Fn(f64, f64) -> f64) -> Self {
        let (rows, cols) = (self.rows, self.cols);
        self.source = Some(Grid2D::from_fn(rows, cols, |i, j| {
            let y = i as f64 / (rows - 1).max(1) as f64;
            let x = j as f64 / (cols - 1).max(1) as f64;
            f(x, y)
        }));
        self
    }

    /// Sets the stop condition (default `1e-4`, 1 000 000 iterations).
    pub fn stop(mut self, tolerance: f64, max_iterations: usize) -> Self {
        self.tolerance = tolerance;
        self.max_iterations = max_iterations;
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] for a too-small grid, non-positive spacing
    /// or tolerance, or a source grid of the wrong shape.
    pub fn build(self) -> Result<PoissonProblem, ProblemError> {
        check_dims(self.rows, self.cols)?;
        check_positive("dx", self.dx)?;
        check_positive("dy", self.dy)?;
        check_positive("tolerance", self.tolerance)?;
        let source = self
            .source
            .unwrap_or_else(|| Grid2D::zeros(self.rows, self.cols));
        if source.rows() != self.rows || source.cols() != self.cols {
            return Err(ProblemError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: (source.rows(), source.cols()),
            });
        }
        Ok(PoissonProblem {
            rows: self.rows,
            cols: self.cols,
            dx: self.dx,
            dy: self.dy,
            boundary: self.boundary,
            source,
            tolerance: self.tolerance,
            max_iterations: self.max_iterations,
        })
    }
}

// ---------------------------------------------------------------------------
// Heat
// ---------------------------------------------------------------------------

/// The heat equation `∂u/∂t = α ∇²u`, explicit (FTCS) time stepping.
#[derive(Clone, Debug, PartialEq)]
pub struct HeatProblem {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    alpha: f64,
    dt: f64,
    steps: usize,
    boundary: DirichletBoundary,
    initial: Grid2D<f64>,
}

/// Builder for [`HeatProblem`].
#[derive(Clone, Debug)]
pub struct HeatBuilder {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    alpha: f64,
    dt: f64,
    steps: usize,
    boundary: DirichletBoundary,
    initial: Option<Grid2D<f64>>,
}

impl HeatProblem {
    /// Starts building a heat problem on a `rows x cols` grid.
    pub fn builder(rows: usize, cols: usize) -> HeatBuilder {
        HeatBuilder {
            rows,
            cols,
            dx: 1.0,
            dy: 1.0,
            alpha: 1.0,
            dt: 0.2,
            steps: 100,
            boundary: DirichletBoundary::zero(),
            initial: None,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of time steps.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The diffusion ratios `(r_x, r_y) = (α·dt/dx², α·dt/dy²)`.
    pub fn ratios(&self) -> (f64, f64) {
        (
            self.alpha * self.dt / (self.dx * self.dx),
            self.alpha * self.dt / (self.dy * self.dy),
        )
    }

    /// Lowers to the five-point stencil form at precision `T`
    /// (paper Eq. 9): `w_h = r_x`, `w_v = r_y`, `w_s = 1 - 2r_x - 2r_y`.
    pub fn discretize<T: Scalar>(&self) -> StencilProblem<T> {
        let (r_x, r_y) = self.ratios();
        let w_s = 1.0 - 2.0 * r_x - 2.0 * r_y;
        let mut initial = self.initial.convert::<T>();
        self.boundary.apply(&mut initial);
        StencilProblem {
            kind: PdeKind::Heat,
            stencil: FivePointStencil::new(T::from_f64(r_y), T::from_f64(r_x), T::from_f64(w_s)),
            offset: OffsetField::None,
            initial,
            prev_initial: None,
            mode: RunMode::FixedSteps(self.steps),
        }
    }
}

impl HeatBuilder {
    /// Sets the grid spacings (default 1.0 each).
    pub fn spacing(mut self, dx: f64, dy: f64) -> Self {
        self.dx = dx;
        self.dy = dy;
        self
    }

    /// Sets the thermal diffusivity α (default 1.0).
    pub fn alpha(mut self, alpha: f64) -> Self {
        self.alpha = alpha;
        self
    }

    /// Sets the time step and number of steps (default 0.2, 100).
    pub fn time(mut self, dt: f64, steps: usize) -> Self {
        self.dt = dt;
        self.steps = steps;
        self
    }

    /// Sets the Dirichlet boundary data (default all-zero).
    pub fn boundary(mut self, boundary: DirichletBoundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the initial temperature field (default all-zero).
    pub fn initial(mut self, initial: Grid2D<f64>) -> Self {
        self.initial = Some(initial);
        self
    }

    /// Sets the initial field from a function of normalized `(x, y)`.
    pub fn initial_fn(mut self, f: impl Fn(f64, f64) -> f64) -> Self {
        let (rows, cols) = (self.rows, self.cols);
        self.initial = Some(Grid2D::from_fn(rows, cols, |i, j| {
            let y = i as f64 / (rows - 1).max(1) as f64;
            let x = j as f64 / (cols - 1).max(1) as f64;
            f(x, y)
        }));
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] for invalid dimensions/parameters, an
    /// initial field of the wrong shape, or a time step violating the FTCS
    /// stability bound `r_x + r_y <= 1/2`.
    pub fn build(self) -> Result<HeatProblem, ProblemError> {
        check_dims(self.rows, self.cols)?;
        check_positive("dx", self.dx)?;
        check_positive("dy", self.dy)?;
        check_positive("alpha", self.alpha)?;
        check_positive("dt", self.dt)?;
        let r_x = self.alpha * self.dt / (self.dx * self.dx);
        let r_y = self.alpha * self.dt / (self.dy * self.dy);
        if r_x + r_y > 0.5 {
            return Err(ProblemError::UnstableTimeStep {
                ratio: r_x + r_y,
                limit: 0.5,
            });
        }
        let initial = self
            .initial
            .unwrap_or_else(|| Grid2D::zeros(self.rows, self.cols));
        if initial.rows() != self.rows || initial.cols() != self.cols {
            return Err(ProblemError::ShapeMismatch {
                expected: (self.rows, self.cols),
                got: (initial.rows(), initial.cols()),
            });
        }
        Ok(HeatProblem {
            rows: self.rows,
            cols: self.cols,
            dx: self.dx,
            dy: self.dy,
            alpha: self.alpha,
            dt: self.dt,
            steps: self.steps,
            boundary: self.boundary,
            initial,
        })
    }
}

// ---------------------------------------------------------------------------
// Wave
// ---------------------------------------------------------------------------

/// The wave equation `∂²u/∂t² = c² ∇²u`, explicit leap-frog time stepping.
#[derive(Clone, Debug, PartialEq)]
pub struct WaveProblem {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    wave_speed: f64,
    dt: f64,
    steps: usize,
    boundary: DirichletBoundary,
    initial: Grid2D<f64>,
    velocity: Grid2D<f64>,
}

/// Builder for [`WaveProblem`].
#[derive(Clone, Debug)]
pub struct WaveBuilder {
    rows: usize,
    cols: usize,
    dx: f64,
    dy: f64,
    wave_speed: f64,
    dt: f64,
    steps: usize,
    boundary: DirichletBoundary,
    initial: Option<Grid2D<f64>>,
    velocity: Option<Grid2D<f64>>,
}

impl WaveProblem {
    /// Starts building a wave problem on a `rows x cols` grid.
    pub fn builder(rows: usize, cols: usize) -> WaveBuilder {
        WaveBuilder {
            rows,
            cols,
            dx: 1.0,
            dy: 1.0,
            wave_speed: 1.0,
            dt: 0.5,
            steps: 100,
            boundary: DirichletBoundary::zero(),
            initial: None,
            velocity: None,
        }
    }

    /// Grid dimensions `(rows, cols)`.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Number of leap-frog steps performed from `(U^0, U^1)`.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// The Courant ratios `(r_X, r_Y) = (c²dt²/dx², c²dt²/dy²)`.
    pub fn ratios(&self) -> (f64, f64) {
        let c2t2 = self.wave_speed * self.wave_speed * self.dt * self.dt;
        (c2t2 / (self.dx * self.dx), c2t2 / (self.dy * self.dy))
    }

    /// Lowers to the five-point stencil form at precision `T`
    /// (paper Eq. 10): `w_h = r_X`, `w_v = r_Y`, `w_s = 2(1 - r_X - r_Y)`
    /// and offset `b = -U^{k-1}`.
    ///
    /// `U^1` is bootstrapped from the initial displacement and velocity
    /// with the standard second-order Taylor start
    /// `U^1 = U^0 + dt·v + ½(r_X δ²_x + r_Y δ²_y)U^0`, so the returned
    /// problem has `initial = U^1` and `prev_initial = Some(U^0)`.
    pub fn discretize<T: Scalar>(&self) -> StencilProblem<T> {
        let (r_x, r_y) = self.ratios();
        let w_s = 2.0 * (1.0 - r_x - r_y);
        let mut u0 = self.initial.clone();
        self.boundary.apply(&mut u0);

        // First step: second-order accurate bootstrap of U^1.
        let mut u1 = u0.clone();
        for i in 1..self.rows - 1 {
            for j in 1..self.cols - 1 {
                let lap = r_x * (u0[(i, j - 1)] + u0[(i, j + 1)] - 2.0 * u0[(i, j)])
                    + r_y * (u0[(i - 1, j)] + u0[(i + 1, j)] - 2.0 * u0[(i, j)]);
                u1[(i, j)] = u0[(i, j)] + self.dt * self.velocity[(i, j)] + 0.5 * lap;
            }
        }
        self.boundary.apply(&mut u1);

        StencilProblem {
            kind: PdeKind::Wave,
            stencil: FivePointStencil::new(T::from_f64(r_y), T::from_f64(r_x), T::from_f64(w_s)),
            offset: OffsetField::ScaledPrevField { scale: -T::ONE },
            initial: u1.convert(),
            prev_initial: Some(u0.convert()),
            mode: RunMode::FixedSteps(self.steps),
        }
    }
}

impl WaveBuilder {
    /// Sets the grid spacings (default 1.0 each).
    pub fn spacing(mut self, dx: f64, dy: f64) -> Self {
        self.dx = dx;
        self.dy = dy;
        self
    }

    /// Sets the wave propagation speed `c` (default 1.0).
    pub fn wave_speed(mut self, c: f64) -> Self {
        self.wave_speed = c;
        self
    }

    /// Sets the time step and number of steps (default 0.5, 100).
    pub fn time(mut self, dt: f64, steps: usize) -> Self {
        self.dt = dt;
        self.steps = steps;
        self
    }

    /// Sets the Dirichlet boundary data (default all-zero).
    pub fn boundary(mut self, boundary: DirichletBoundary) -> Self {
        self.boundary = boundary;
        self
    }

    /// Sets the initial displacement field (default all-zero).
    pub fn initial(mut self, initial: Grid2D<f64>) -> Self {
        self.initial = Some(initial);
        self
    }

    /// Sets the initial displacement from a function of normalized `(x, y)`.
    pub fn initial_fn(mut self, f: impl Fn(f64, f64) -> f64) -> Self {
        let (rows, cols) = (self.rows, self.cols);
        self.initial = Some(Grid2D::from_fn(rows, cols, |i, j| {
            let y = i as f64 / (rows - 1).max(1) as f64;
            let x = j as f64 / (cols - 1).max(1) as f64;
            f(x, y)
        }));
        self
    }

    /// Sets the initial velocity field `∂u/∂t(t=0)` (default all-zero).
    pub fn velocity(mut self, velocity: Grid2D<f64>) -> Self {
        self.velocity = Some(velocity);
        self
    }

    /// Validates and builds the problem.
    ///
    /// # Errors
    ///
    /// Returns [`ProblemError`] for invalid dimensions/parameters, fields
    /// of the wrong shape, or a time step violating the CFL bound
    /// `r_X + r_Y <= 1`.
    pub fn build(self) -> Result<WaveProblem, ProblemError> {
        check_dims(self.rows, self.cols)?;
        check_positive("dx", self.dx)?;
        check_positive("dy", self.dy)?;
        check_positive("wave_speed", self.wave_speed)?;
        check_positive("dt", self.dt)?;
        let c2t2 = self.wave_speed * self.wave_speed * self.dt * self.dt;
        let ratio = c2t2 / (self.dx * self.dx) + c2t2 / (self.dy * self.dy);
        if ratio > 1.0 {
            return Err(ProblemError::UnstableTimeStep { ratio, limit: 1.0 });
        }
        let initial = self
            .initial
            .unwrap_or_else(|| Grid2D::zeros(self.rows, self.cols));
        let velocity = self
            .velocity
            .unwrap_or_else(|| Grid2D::zeros(self.rows, self.cols));
        for field in [&initial, &velocity] {
            if field.rows() != self.rows || field.cols() != self.cols {
                return Err(ProblemError::ShapeMismatch {
                    expected: (self.rows, self.cols),
                    got: (field.rows(), field.cols()),
                });
            }
        }
        Ok(WaveProblem {
            rows: self.rows,
            cols: self.cols,
            dx: self.dx,
            dy: self.dy,
            wave_speed: self.wave_speed,
            dt: self.dt,
            steps: self.steps,
            boundary: self.boundary,
            initial,
            velocity,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laplace_unit_spacing_gives_quarter_weights() {
        let p = LaplaceProblem::builder(10, 10).build().unwrap();
        let sp = p.discretize::<f64>();
        assert_eq!(sp.stencil.w_v, 0.25);
        assert_eq!(sp.stencil.w_h, 0.25);
        assert_eq!(sp.stencil.w_s, 0.0);
        assert!(matches!(sp.offset, OffsetField::None));
        assert_eq!(sp.kind, PdeKind::Laplace);
        assert!(sp.prev_initial.is_none());
    }

    #[test]
    fn laplace_anisotropic_weights_sum_to_half() {
        let p = LaplaceProblem::builder(8, 8)
            .spacing(0.5, 2.0)
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        // w_v + w_h = 1/2 always (each pair contributes twice).
        assert!((sp.stencil.w_v + sp.stencil.w_h - 0.5).abs() < 1e-14);
        // dx < dy means vertical differences are weighted less:
        // w_v = dx²/D < w_h = dy²/D.
        assert!(sp.stencil.w_v < sp.stencil.w_h);
    }

    #[test]
    fn poisson_offset_folds_source() {
        let p = PoissonProblem::builder(5, 5)
            .source_fn(|_, _| 4.0)
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        match &sp.offset {
            OffsetField::Static(c) => {
                // w_b = dx²dy²/(2(dx²+dy²)) = 1/4 at unit spacing; c = -w_b*b = -1.
                assert!((c[(2, 2)] + 1.0).abs() < 1e-14);
            }
            other => panic!("expected static offset, got {other:?}"),
        }
    }

    #[test]
    fn heat_weights_and_stability() {
        let p = HeatProblem::builder(5, 5).time(0.2, 10).build().unwrap();
        let sp = p.discretize::<f64>();
        assert!((sp.stencil.w_h - 0.2).abs() < 1e-14);
        assert!((sp.stencil.w_v - 0.2).abs() < 1e-14);
        assert!((sp.stencil.w_s - 0.2).abs() < 1e-14); // 1 - 4*0.2
        assert_eq!(sp.mode, RunMode::FixedSteps(10));

        let unstable = HeatProblem::builder(5, 5).time(0.3, 10).build();
        assert!(matches!(
            unstable,
            Err(ProblemError::UnstableTimeStep { .. })
        ));
    }

    #[test]
    fn wave_weights_offset_and_bootstrap() {
        let p = WaveProblem::builder(5, 5)
            .time(0.5, 7)
            .initial_fn(|x, y| x * y)
            .build()
            .unwrap();
        let sp = p.discretize::<f64>();
        // r = 0.25 each; w_s = 2(1 - 0.5) = 1.
        assert!((sp.stencil.w_v - 0.25).abs() < 1e-14);
        assert!((sp.stencil.w_s - 1.0).abs() < 1e-14);
        assert!(matches!(
            sp.offset,
            OffsetField::ScaledPrevField { scale } if scale == -1.0
        ));
        let prev = sp.prev_initial.as_ref().expect("wave keeps U^0");
        assert_eq!(prev.rows(), 5);
        // Zero initial velocity and nonzero curvature: U^1 != U^0 somewhere.
        assert!(sp.initial.diff_max(prev) > 0.0);
    }

    #[test]
    fn wave_cfl_violation_rejected() {
        let r = WaveProblem::builder(5, 5).time(1.01, 3).build();
        assert!(matches!(r, Err(ProblemError::UnstableTimeStep { .. })));
    }

    #[test]
    fn grid_too_small_rejected() {
        assert!(matches!(
            LaplaceProblem::builder(2, 10).build(),
            Err(ProblemError::GridTooSmall { .. })
        ));
        assert!(matches!(
            HeatProblem::builder(10, 1).build(),
            Err(ProblemError::GridTooSmall { .. })
        ));
    }

    #[test]
    fn bad_parameters_rejected() {
        assert!(LaplaceProblem::builder(5, 5)
            .spacing(0.0, 1.0)
            .build()
            .is_err());
        assert!(LaplaceProblem::builder(5, 5).stop(0.0, 10).build().is_err());
        assert!(HeatProblem::builder(5, 5).alpha(-1.0).build().is_err());
        assert!(WaveProblem::builder(5, 5)
            .wave_speed(f64::NAN)
            .build()
            .is_err());
    }

    #[test]
    fn shape_mismatch_rejected() {
        let bad = Grid2D::<f64>::zeros(4, 4);
        assert!(matches!(
            PoissonProblem::builder(5, 5).source(bad.clone()).build(),
            Err(ProblemError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            HeatProblem::builder(5, 5).initial(bad.clone()).build(),
            Err(ProblemError::ShapeMismatch { .. })
        ));
        assert!(matches!(
            WaveProblem::builder(5, 5).velocity(bad).build(),
            Err(ProblemError::ShapeMismatch { .. })
        ));
    }

    #[test]
    fn kind_classification() {
        assert_eq!(PdeKind::Laplace.class(), PdeClass::Elliptic);
        assert_eq!(PdeKind::Poisson.class(), PdeClass::Elliptic);
        assert_eq!(PdeKind::Heat.class(), PdeClass::Parabolic);
        assert_eq!(PdeKind::Wave.class(), PdeClass::Hyperbolic);
        assert!(PdeKind::Laplace.is_steady_state());
        assert!(!PdeKind::Wave.is_steady_state());
        assert_eq!(PdeKind::ALL.len(), 4);
    }

    #[test]
    fn convert_problem_precision() {
        let p = LaplaceProblem::builder(6, 6)
            .boundary(DirichletBoundary::hot_top(1.0))
            .build()
            .unwrap();
        let sp64 = p.discretize::<f64>();
        let sp32 = sp64.convert::<f32>();
        assert_eq!(sp32.stencil.w_v, 0.25f32);
        assert_eq!(sp32.initial[(0, 3)], 1.0f32);
        assert_eq!(sp32.rows(), 6);
        assert_eq!(sp32.cols(), 6);
    }

    #[test]
    fn display_and_error_messages() {
        assert_eq!(PdeKind::Wave.to_string(), "Wave");
        let e = ProblemError::GridTooSmall { rows: 1, cols: 9 };
        assert!(e.to_string().contains("no interior"));
        let e = ProblemError::UnstableTimeStep {
            ratio: 0.7,
            limit: 0.5,
        };
        assert!(e.to_string().contains("unstable"));
    }
}
