//! Regenerates the paper's Fig. 7: speedup of every PDE solver over
//! CPU-J, for all four benchmark equations across grid sizes.
//!
//! Iteration counts are measured with the real software solvers at the
//! base size (100x100) and extrapolated with the standard asymptotic
//! laws (see `baselines::iterations`). FDMAX time comes from the
//! simulator-validated performance model.
//!
//! Paper headline numbers (FDMAX-J geomean speedups): 1260x over CPU-J,
//! 1189x over CPU-G [sic: the paper quotes FDMAX-J vs both CPUs], 5.8x
//! over GPU-J, 4.9x over GPU-C, 3.6x over `MemAccel`, 2.9x over Alrescha;
//! plus the §7.2 observation that FDMAX-J/-H run ~80%/~60% more
//! iterations than CPU-J.

use fdmax::config::FdmaxConfig;
use fdmax_bench::{fmt_ratio, full_evaluation, geomean, BASE_N};

const SIZES: [usize; 3] = [100, 1_000, 10_000];
const PLATFORMS: [&str; 8] = [
    "CPU-J", "CPU-G", "GPU-J", "GPU-C", "MemAccel", "Alrescha", "FDMAX-J", "FDMAX-H",
];

fn main() {
    let config = FdmaxConfig::paper_default();
    eprintln!("measuring iteration counts at {BASE_N}x{BASE_N} (runs the real solvers)...");
    let rows = full_evaluation(&config, &SIZES, BASE_N);

    println!("Fig. 7 — Speedup over CPU-J\n");
    print!("{:<18}", "benchmark");
    for p in PLATFORMS {
        print!(" {p:>10}");
    }
    println!();
    for row in &rows {
        print!("{:<18}", format!("{} {}^2", row.kind, row.n));
        for p in PLATFORMS {
            let e = row.entry(p).expect("platform present");
            print!(" {:>10}", fmt_ratio(e.speedup_over_cpu_j));
        }
        println!();
    }

    println!("\nGeomean speedup over CPU-J (paper values in parentheses):");
    let paper: [(&str, &str); 7] = [
        ("CPU-G", "~1.06x"),
        ("GPU-J", "~205x"),
        ("GPU-C", "~243x"),
        ("MemAccel", "~330x"),
        ("Alrescha", "~410x"),
        ("FDMAX-J", "1189x"),
        ("FDMAX-H", "~1250x"),
    ];
    for (p, paper_note) in paper {
        let series: Vec<f64> = rows
            .iter()
            .map(|r| r.entry(p).expect("platform present").speedup_over_cpu_j)
            .collect();
        println!(
            "  {p:<10} {:>10}   (paper {paper_note})",
            fmt_ratio(geomean(&series))
        );
    }

    println!("\nFDMAX relative to the other accelerators (geomean of per-point ratios):");
    for (us, them, paper_note) in [
        ("FDMAX-J", "GPU-J", "5.8x"),
        ("FDMAX-J", "GPU-C", "4.9x"),
        ("FDMAX-J", "MemAccel", "3.6x"),
        ("FDMAX-J", "Alrescha", "2.9x"),
        ("FDMAX-H", "FDMAX-J", "1.05x"),
    ] {
        let series: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.entry(us).expect("platform present").speedup_over_cpu_j
                    / r.entry(them).expect("platform present").speedup_over_cpu_j
            })
            .collect();
        println!(
            "  {us} vs {them:<10} {:>8}   (paper {paper_note})",
            fmt_ratio(geomean(&series))
        );
    }

    println!(
        "\nPer-iteration (iso-iteration) speedup of FDMAX over each accelerator — the pure\n\
         architecture comparison, independent of solver-method iteration counts:"
    );
    {
        use baselines::gpu::GpuModel;
        use baselines::platform::{Platform, WorkloadSpec};
        use baselines::spmv_accel::SpmvAcceleratorModel;
        use fdm::pde::PdeKind;
        use fdmax_bench::fdmax_run;
        println!(
            "{:<16} {:>12} {:>12} {:>12}",
            "point", "vs GPU-J", "vs MemAccel", "vs Alrescha"
        );
        for kind in [PdeKind::Laplace, PdeKind::Heat] {
            for n in SIZES {
                let one = |p: &dyn Platform| p.run(&WorkloadSpec::new(kind, n, 100)).seconds;
                let fdmax = fdmax_run(&config, kind, n, 100).seconds;
                println!(
                    "{:<16} {:>11.2}x {:>11.2}x {:>11.2}x",
                    format!("{kind} {n}^2"),
                    one(&GpuModel::rtx3090_jacobi()) / fdmax,
                    one(&SpmvAcceleratorModel::memaccel()) / fdmax,
                    one(&SpmvAcceleratorModel::alrescha()) / fdmax,
                );
            }
        }
    }

    println!("\n§7.2 iteration penalties from f32 (Laplace/Poisson only; paper ~1.8x / ~1.6x):");
    for row in rows
        .iter()
        .filter(|r| r.kind.is_steady_state() && r.n == 100)
    {
        println!(
            "  {}: FDMAX-J/CPU-J iterations = {:.2}x, FDMAX-H/CPU-J = {:.2}x",
            row.kind,
            row.budget.jacobi_f32 as f64 / row.budget.jacobi_f64 as f64,
            row.budget.hybrid_f32 as f64 / row.budget.jacobi_f64 as f64,
        );
    }
}
