//! Utility: probe how iteration counts grow with grid size under the
//! shared stop condition — the data behind the fitted power-law
//! extrapolation used by the Fig. 7/8 harness.
//!
//! Run with: `cargo run --release -p fdmax-bench --bin iterprobe`

use baselines::iterations::{
    measure_krylov_iterations, measure_relaxation_iterations, KrylovMethod, Precision,
};
use fdm::pde::PdeKind;
use fdm::solver::UpdateMethod;

fn main() {
    println!("Iteration growth on Laplace (tolerance 1e-4, sine-top boundary)\n");
    println!(
        "{:<8} {:>12} {:>12} {:>12} {:>12} {:>12}",
        "n", "Jacobi f64", "GS f64", "Hybrid f64", "BiCG-STAB", "PCG"
    );
    let mut prev: Option<(usize, u64)> = None;
    for n in [50usize, 100, 200, 400] {
        let relax = |method| {
            measure_relaxation_iterations(
                PdeKind::Laplace,
                n,
                0,
                method,
                Precision::F64,
                1e-4,
                5_000_000,
            )
        };
        let j = relax(UpdateMethod::Jacobi);
        let g = relax(UpdateMethod::GaussSeidel);
        let h = relax(UpdateMethod::Hybrid);
        let bi = measure_krylov_iterations(
            PdeKind::Laplace,
            n,
            0,
            KrylovMethod::BicgStab,
            1e-4,
            100_000,
        );
        let p = measure_krylov_iterations(PdeKind::Laplace, n, 0, KrylovMethod::Pcg, 1e-4, 100_000);
        print!("{n:<8} {j:>12} {g:>12} {h:>12} {bi:>12} {p:>12}");
        if let Some((pn, pj)) = prev {
            let exp = ((j as f64 / pj as f64).ln()) / ((n as f64 / pn as f64).ln());
            print!("   Jacobi growth exponent vs n={pn}: {exp:.2}");
        }
        println!();
        prev = Some((n, j));
    }
    println!(
        "\nStationary methods grow superlinearly (~n^1.7 here), Krylov roughly linearly —\n\
         the measured exponents feed the harness's extrapolation to 10K x 10K."
    );
}
