//! Regenerates the paper's Fig. 1: convergence of FDM on the Laplace
//! equation with a 100x100 grid.
//!
//! * Part (a): Gauss-Seidel under f16 / f32 / f64 arithmetic.
//! * Part (b): f64 under Jacobi / Hybrid / Gauss-Seidel / Checkerboard.
//!
//! Prints the normalized update-norm residual (norm divided by the first
//! iteration's norm) at sampled iterations, plus the iterations each
//! series needs to reach 1e-3 — the "f32 tracks f64, f16 stalls"
//! observation that motivates FDMAX's choice of single precision.

use fdm::convergence::{ResidualHistory, StopCondition};
use fdm::pde::{PdeKind, StencilProblem};
use fdm::precision::{Scalar, F16};
use fdm::solver::{solve, UpdateMethod};
use fdm::workload::benchmark_problem;

const GRID: usize = 100;
const ITERS: usize = 4_000;
const SAMPLES: [usize; 9] = [1, 5, 10, 25, 50, 100, 500, 1_000, 4_000];

fn run<T: Scalar>(method: UpdateMethod) -> ResidualHistory {
    let problem: StencilProblem<T> =
        benchmark_problem(PdeKind::Laplace, GRID, 0).expect("valid benchmark");
    solve(&problem, method, &StopCondition::fixed_steps(ITERS))
        .history()
        .clone()
}

fn print_series(label: &str, history: &ResidualHistory) {
    let normalized = history.normalized();
    print!("{label:<22}");
    for &k in &SAMPLES {
        let v = normalized.get(k - 1).copied().unwrap_or(f64::NAN);
        print!(" {v:>10.3e}");
    }
    match history.iterations_to_reach(1e-3) {
        Some(k) => println!("   reaches 1e-3 @ {k}"),
        None => println!("   never reaches 1e-3 in {ITERS} iterations"),
    }
}

fn main() {
    println!("Fig. 1 — FDM convergence on Laplace, {GRID}x{GRID} grid");
    print!("{:<22}", "series \\ iteration");
    for &k in &SAMPLES {
        print!(" {k:>10}");
    }
    println!();

    println!("\n(a) Gauss-Seidel under different data precision");
    print_series("GS fp64", &run::<f64>(UpdateMethod::GaussSeidel));
    print_series("GS fp32", &run::<f32>(UpdateMethod::GaussSeidel));
    print_series("GS fp16", &run::<F16>(UpdateMethod::GaussSeidel));

    println!("\n(b) FP64 under different iteration methods");
    print_series("Jacobi fp64", &run::<f64>(UpdateMethod::Jacobi));
    print_series("Hybrid fp64", &run::<f64>(UpdateMethod::Hybrid));
    print_series("Gauss-Seidel fp64", &run::<f64>(UpdateMethod::GaussSeidel));
    print_series("Checkerboard fp64", &run::<f64>(UpdateMethod::Checkerboard));

    println!(
        "\nPaper's observations to check: (a) fp32 tracks fp64 while fp16 needs \
         significantly more iterations / stalls; (b) Gauss-Seidel < Checkerboard < \
         Hybrid < Jacobi in iterations to a given residual."
    );
}
