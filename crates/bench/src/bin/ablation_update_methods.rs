//! Ablation: update-method trade-offs (paper §7.2 and §7.5).
//!
//! Measures, with the real solvers:
//!
//! * FDMAX-H vs FDMAX-J end-to-end speedup (paper: 1.05x on average) —
//!   Hybrid converges faster at identical per-iteration cost;
//! * Hybrid vs Checkerboard iteration ratio (paper: no more than ~1.4x) —
//!   the justification for choosing Hybrid, since Checkerboard can only
//!   keep half the PEs busy per phase while Hybrid keeps all of them;
//! * GPU-C vs GPU-J (paper: 1.2x).

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::solver::{solve, UpdateMethod};
use fdm::workload::benchmark_problem;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax_bench::geomean;

fn main() {
    let stop = StopCondition::tolerance(1e-4, 2_000_000);
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");

    println!("Update-method ablation (Laplace & Poisson, tolerance 1e-4)\n");
    println!(
        "{:<10} {:>5} {:>10} {:>10} {:>10} {:>12} {:>14}",
        "PDE", "n", "J iters", "H iters", "C iters", "H/C ratio", "FDMAX H-vs-J"
    );

    let mut hc_ratios = Vec::new();
    let mut hw_speedups = Vec::new();
    for kind in [PdeKind::Laplace, PdeKind::Poisson] {
        for n in [50usize, 100, 150] {
            let sp64 = benchmark_problem::<f64>(kind, n, 0).expect("valid benchmark");
            let j = solve(&sp64, UpdateMethod::Jacobi, &stop).iterations();
            let h = solve(&sp64, UpdateMethod::Hybrid, &stop).iterations();
            let c = solve(&sp64, UpdateMethod::Checkerboard, &stop).iterations();
            let hc = h as f64 / c as f64;
            hc_ratios.push(hc);

            // End-to-end on the accelerator (f32, cycle-accurate).
            let sp32 = benchmark_problem::<f32>(kind, n, 0).expect("valid benchmark");
            let out_j = accel
                .solve_with(&sp32, HwUpdateMethod::Jacobi, &stop)
                .expect("valid problem");
            let out_h = accel
                .solve_with(&sp32, HwUpdateMethod::Hybrid, &stop)
                .expect("valid problem");
            let speedup = out_j.report.seconds() / out_h.report.seconds();
            hw_speedups.push(speedup);

            println!(
                "{:<10} {:>5} {:>10} {:>10} {:>10} {:>12.3} {:>13.3}x",
                kind.to_string(),
                n,
                j,
                h,
                c,
                hc,
                speedup
            );
        }
    }

    let hc = geomean(&hc_ratios);
    println!(
        "\nHybrid/Checkerboard iteration ratio: geomean {hc:.3}, max {:.3} (paper: <= ~1.4x)",
        hc_ratios.iter().cloned().fold(0.0, f64::max)
    );
    println!(
        "FDMAX-H speedup over FDMAX-J: geomean {:.3}x (paper: 1.05x)",
        geomean(&hw_speedups)
    );

    // The §7.5 hardware decision, quantified: a hypothetical FDMAX-C
    // would run checkerboard's two phases with only half the PEs active
    // per cycle — 2x the cycles per iteration of Jacobi/Hybrid at equal
    // array size. End-to-end:
    //   time(FDMAX-C) / time(FDMAX-H) = 2 x iters_C / iters_H = 2 / hc.
    let c_vs_h = 2.0 / hc;
    println!(
        "\nHypothetical FDMAX-C (checkerboard in hardware): 2x cycles/iteration at half \
         PE utilization -> {c_vs_h:.2}x SLOWER than FDMAX-H end to end. The paper's \
         choice of Hybrid is a ~{:.0}% win.",
        (c_vs_h - 1.0) * 100.0
    );
}
