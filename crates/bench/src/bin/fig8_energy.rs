//! Regenerates the paper's Fig. 8: energy consumption of every solver
//! normalized to CPU-J (lower is better).
//!
//! Paper headline numbers: FDMAX-H consumes 0.06% / 0.09% / 11.7% /
//! 17.3% / 55.7% / 65.9% of the energy of CPU-J / CPU-G / GPU-J / GPU-C /
//! `MemAccel` / Alrescha.

use fdmax::config::FdmaxConfig;
use fdmax_bench::{full_evaluation, geomean, BASE_N};

const SIZES: [usize; 3] = [100, 1_000, 10_000];
const PLATFORMS: [&str; 8] = [
    "CPU-J", "CPU-G", "GPU-J", "GPU-C", "MemAccel", "Alrescha", "FDMAX-J", "FDMAX-H",
];

fn main() {
    let config = FdmaxConfig::paper_default();
    eprintln!("measuring iteration counts at {BASE_N}x{BASE_N} (runs the real solvers)...");
    let rows = full_evaluation(&config, &SIZES, BASE_N);

    println!("Fig. 8 — Energy normalized to CPU-J (percent; lower is better)\n");
    print!("{:<18}", "benchmark");
    for p in PLATFORMS {
        print!(" {p:>10}");
    }
    println!();
    for row in &rows {
        print!("{:<18}", format!("{} {}^2", row.kind, row.n));
        for p in PLATFORMS {
            let e = row.entry(p).expect("platform present");
            print!(" {:>9.3}%", 100.0 * e.energy_vs_cpu_j);
        }
        println!();
    }

    println!("\nFDMAX-H energy as a fraction of each platform (geomean; paper in parentheses):");
    for (them, paper_note) in [
        ("CPU-J", "0.06%"),
        ("CPU-G", "0.09%"),
        ("GPU-J", "11.7%"),
        ("GPU-C", "17.3%"),
        ("MemAccel", "55.7%"),
        ("Alrescha", "65.9%"),
    ] {
        let series: Vec<f64> = rows
            .iter()
            .map(|r| {
                r.entry("FDMAX-H")
                    .expect("platform present")
                    .metrics
                    .energy_joules
                    / r.entry(them)
                        .expect("platform present")
                        .metrics
                        .energy_joules
            })
            .collect();
        println!(
            "  vs {them:<10} {:>8.3}%   (paper {paper_note})",
            100.0 * geomean(&series)
        );
    }
}
