//! Ablation: on-chip buffer banking (paper §6.1).
//!
//! The paper sizes each buffer at 32 banks as the "optimal balance
//! between performance and overhead": the 8x8 array issues 128-192
//! buffer accesses per cycle while DRAM can sustain 160 elements per
//! cycle. This binary sweeps the bank count and reports both performance
//! (cycles per iteration) and the buffer area from the layout model, plus
//! a performance-per-area figure of merit.

use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;
use memmodel::layout::LayoutReport;

fn main() {
    let grid = 1_000;
    println!("Buffer-banking ablation (Laplace {grid}x{grid}, Jacobi, default 8x8 array)\n");
    println!(
        "{:<8} {:>16} {:>12} {:>14} {:>16}",
        "banks", "cycles/iter", "perf (rel)", "area (mm2)", "perf per area"
    );

    let mut results = Vec::new();
    for banks in [8usize, 16, 32, 64, 128] {
        let mut cfg = FdmaxConfig::paper_default();
        cfg.buffer_banks = banks;
        let elastic = ElasticConfig::plan(&cfg, grid, grid);
        let cycles = iteration_estimate(&cfg, &elastic, grid, grid, false).effective_cycles();
        let area = LayoutReport::new(&cfg.layout_params()).total_area_mm2();
        results.push((banks, cycles, area));
    }
    let base_cycles = results.iter().map(|r| r.1).max().expect("nonempty");
    let mut best = (0usize, 0.0f64);
    for (banks, cycles, area) in &results {
        let perf = base_cycles as f64 / *cycles as f64;
        let ppa = perf / area;
        if ppa > best.1 {
            best = (*banks, ppa);
        }
        println!("{banks:<8} {cycles:>16} {perf:>12.2} {area:>14.3} {ppa:>16.3}");
    }
    println!(
        "\nBest performance-per-area at {} banks (paper picks 32 as the balance point).",
        best.0
    );
}
