//! Ablation: computation reuse (paper §3.2.3).
//!
//! The reuse-aware PE evaluates a five-point stencil output with 2-3
//! multiplications (`w_v` pair, optional `w_s` self, shared `w_h`
//! partial); the `SpMV` formulation multiplies every matrix nonzero —
//! ~5 per point. This binary measures the actual multiplication counts of
//! the cycle-accurate simulator and prices the difference in energy.

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::engine::Session;
use fdmax::sim::DetailedSim;
use memmodel::energy::OpEnergies;

fn main() {
    let cfg = FdmaxConfig::paper_default();
    let n = 100;
    let ops = OpEnergies::fdmax_32nm();

    println!("Computation-reuse ablation ({n}x{n}, one iteration)\n");
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>12} {:>16}",
        "PDE", "interior", "FDMAX muls", "muls/point", "SpMV muls", "mult energy saved"
    );

    for kind in PdeKind::ALL {
        let sp = benchmark_problem::<f32>(kind, n, 1).expect("valid benchmark");
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).expect("valid config");
        Session::new(&mut sim, StopCondition::fixed_steps(1))
            .run()
            .expect("budget-free session on a healthy problem cannot fail");
        let interior = ((n - 2) * (n - 2)) as u64;
        let fdmax_muls = sim.counters().fp_mul;
        // The SpMV formulation: 5 multiplications per interior point
        // (one per stencil matrix nonzero), plus the same DIFF logic.
        let spmv_muls = 5 * interior + interior;
        let saved_pj = (spmv_muls.saturating_sub(fdmax_muls)) as f64 * ops.fp32_mul;
        println!(
            "{:<10} {:>12} {:>14} {:>14.2} {:>12} {:>13.1} nJ",
            kind.to_string(),
            interior,
            fdmax_muls,
            fdmax_muls as f64 / interior as f64,
            spmv_muls,
            saved_pj / 1e3
        );
    }

    println!(
        "\nNote: the FDMAX multiplication count includes the per-point DIFF square and the \
         halo/warm-up work of the streamed boundary rows, so muls/point sits slightly above \
         the ideal 2 (Laplace/Poisson: w_s gated off) or 3 (Heat/Wave). The SpMV form cannot \
         gate anything: every stored nonzero is multiplied."
    );
}
