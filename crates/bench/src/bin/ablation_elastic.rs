//! Ablation: elastic reconfiguration (paper §4.3).
//!
//! Compares the elastic planner's decomposition against the fixed
//! monolithic 1x64 chain on grids of different aspect ratios. The win
//! comes from tall-and-thin grids, where a monolithic chain idles most
//! of its PEs.

use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;

fn main() {
    let cfg = FdmaxConfig::paper_default();
    println!("Elastic-reconfiguration ablation (Laplace, Jacobi, cycles per iteration)\n");
    println!(
        "{:<14} {:>14} {:>16} {:>16} {:>10}",
        "grid", "planner picks", "elastic cycles", "fixed 1x64", "gain"
    );

    let shapes: [(usize, usize); 7] = [
        (100, 100),
        (1_000, 1_000),
        (10_000, 10_000),
        (10_000, 100),
        (10_000, 24),
        (100, 10_000),
        (50_000, 12),
    ];
    for (rows, cols) in shapes {
        let planned = ElasticConfig::plan(&cfg, rows, cols);
        let elastic = iteration_estimate(&cfg, &planned, rows, cols, false).effective_cycles();
        let fixed_cfg = ElasticConfig {
            subarrays: 1,
            width: 64,
        };
        let fixed = iteration_estimate(&cfg, &fixed_cfg, rows, cols, false).effective_cycles();
        println!(
            "{:<14} {:>14} {:>16} {:>16} {:>9.2}x",
            format!("{rows}x{cols}"),
            planned.to_string(),
            elastic,
            fixed,
            fixed as f64 / elastic as f64
        );
    }

    println!(
        "\nSquare grids keep the monolithic chain (gain 1.0x); skewed grids split into \
         subarrays, each covering a row strip, recovering the idle PEs."
    );
}
