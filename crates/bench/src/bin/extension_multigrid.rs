//! Extension study (beyond the paper): multigrid on FDMAX.
//!
//! FDMAX accelerates stationary sweeps — exactly the smoother of a
//! geometric multigrid V-cycle. Every level's Gauss-Seidel-style sweep is
//! a five-point stencil pass the PE array already executes, and the
//! coarse grids fit entirely on chip. This binary:
//!
//! 1. measures how many V-cycles the software multigrid needs
//!    (`fdm::solver::multigrid`) versus plain Jacobi/Hybrid iterations;
//! 2. estimates the cycles FDMAX would spend running those V-cycles
//!    (per-level sweep costs from the validated performance model, with
//!    one extra sweep-equivalent per level for the transfer operators);
//! 3. compares against FDMAX-J end to end.
//!
//! The point: the elastic array turns out to be a natural multigrid
//! engine — the planner already reconfigures for the small coarse grids.

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::solver::multigrid::{solve_multigrid, MultigridConfig};
use fdm::solver::{solve, UpdateMethod};
use fdm::workload::benchmark_problem;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;

/// FDMAX cycles for one V-cycle on an `n x n` level hierarchy.
fn fdmax_vcycle_cycles(cfg: &FdmaxConfig, n: usize, mg: &MultigridConfig) -> u64 {
    let mut total = 0u64;
    let mut size = n;
    let mut level = 0usize;
    loop {
        let elastic = ElasticConfig::plan(cfg, size, size);
        let per_sweep = iteration_estimate(cfg, &elastic, size, size, true).effective_cycles();
        let bottom = level + 1 >= mg.max_levels || size < 7 || size.is_multiple_of(2);
        if bottom {
            total += per_sweep * mg.coarse_smooth as u64;
            break;
        }
        // Pre/post smoothing plus one sweep-equivalent for residual +
        // transfer traffic.
        total += per_sweep * (mg.pre_smooth + mg.post_smooth + 1) as u64;
        size = size.div_ceil(2);
        level += 1;
    }
    total
}

fn main() {
    let cfg = FdmaxConfig::paper_default();
    // Hybrid smoothing: the paper's own update method, so every sweep in
    // the V-cycle is something the PE array executes natively.
    let mg = MultigridConfig::hardware_mappable();
    let tol = 1e-6;

    println!("Multigrid-on-FDMAX extension study (Laplace, tolerance {tol:.0e})\n");
    println!(
        "{:<8} {:>10} {:>10} {:>12} {:>16} {:>16} {:>10}",
        "n", "J iters", "V-cycles", "J cycles", "MG cycles (est)", "speedup", "elastic@n"
    );

    for n in [65usize, 129, 257, 513] {
        let sp = benchmark_problem::<f64>(PdeKind::Laplace, n, 0).expect("valid benchmark");
        // Software convergence counts. The stop conditions differ in kind
        // (update norm vs residual norm) but both land within the same
        // discretization error at this tolerance.
        let jacobi = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::tolerance(tol, 5_000_000),
        );
        let mgr = solve_multigrid(&sp, &mg, &StopCondition::tolerance(tol, 200));
        assert!(
            jacobi.converged() && mgr.converged(),
            "solvers must converge at n={n}"
        );

        let elastic = ElasticConfig::plan(&cfg, n, n);
        let per_iter = iteration_estimate(&cfg, &elastic, n, n, false).effective_cycles();
        let j_cycles = per_iter * jacobi.iterations() as u64;
        let mg_cycles = fdmax_vcycle_cycles(&cfg, n, &mg) * mgr.iterations() as u64;
        println!(
            "{:<8} {:>10} {:>10} {:>12} {:>16} {:>15.1}x {:>10}",
            n,
            jacobi.iterations(),
            mgr.iterations(),
            j_cycles,
            mg_cycles,
            j_cycles as f64 / mg_cycles as f64,
            elastic.to_string()
        );
    }

    println!(
        "\nTakeaway: a multigrid scheduler in the Buffer Controller would multiply the \
         paper's elliptic-solve speedups by another one-to-three orders of magnitude at \
         large grids, using the PE array unchanged — the smoother is the same five-point \
         sweep, and the elastic decomposition already adapts to each coarser level."
    );
}
