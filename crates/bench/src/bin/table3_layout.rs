//! Regenerates the paper's Table 3: layout characteristics (area and
//! power per component) of the default FDMAX configuration, plus the §7.1
//! observations.

use fdmax::accelerator::Accelerator;
use fdmax::config::FdmaxConfig;

fn main() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("default config is valid");
    let report = accel.layout_report();

    println!("Table 3 — Layout characteristics of FDMAX (SAED 32 nm, 200 MHz)\n");
    println!("{report}\n");

    let paper_area = 0.99;
    let paper_power = 1711.27;
    println!(
        "Totals vs paper: area {:.3} mm2 (paper {paper_area}), power {:.2} mW (paper {paper_power})",
        report.total_area_mm2(),
        report.total_power_mw()
    );

    let buffers: f64 = ["CurBuffer", "OffsetBuffer", "NextBuffer"]
        .iter()
        .map(|n| report.component(n).expect("component exists").area_mm2)
        .sum();
    let buffers_power: f64 = ["CurBuffer", "OffsetBuffer", "NextBuffer"]
        .iter()
        .map(|n| report.component(n).expect("component exists").power_mw)
        .sum();
    println!(
        "Buffers: {:.2}% of area (paper 73.08%), {:.2}% of power (paper 65.12%)",
        100.0 * buffers / report.total_area_mm2(),
        100.0 * buffers_power / report.total_power_mw()
    );
    let pe = report.component("PE Array").expect("component exists");
    println!(
        "PE array: {:.2}% of area (paper 4.79%), {:.2}% of power (paper 17.12%)",
        100.0 * pe.area_mm2 / report.total_area_mm2(),
        100.0 * pe.power_mw / report.total_power_mw()
    );
}
