//! Regenerates the paper's Table 2: characteristics of prior FDM /
//! scientific-computing accelerators versus this work.

use baselines::bitserial::table2;

fn main() {
    println!("Table 2 — Comparison to existing FDM accelerators");
    println!(
        "{:<16} {:<22} {:<16} {:<22} {:<34} Grid Size",
        "Accelerator", "Precision", "Technology", "Update Method", "Applications"
    );
    println!("{}", "-".repeat(140));
    for row in table2() {
        println!("{row}");
    }
    println!(
        "\nQualitative takeaway (§7.5): only the Krylov accelerators and FDMAX support \
         arbitrary grid sizes, and only FDMAX does so with stencil-level computation reuse \
         across all four benchmark PDE types."
    );
}
