//! Regenerates the paper's Fig. 6: the cycle-by-cycle walkthrough of
//! mapping the Laplace equation onto a 1x3 PE chain.
//!
//! The paper narrates Cycle #0 (warm-up reads), Cycle #1 (first final
//! products, pFIFO push of the incomplete last column, nFIFO push of the
//! seam partial), the NULL flush cycle, and the batch switch where the
//! `HaloAdder` completes the previous batch's last column. This binary
//! prints the trace of exactly that scenario, recorded from the
//! cycle-accurate model itself.

use fdm::grid::Grid2D;
use fdm::stencil::FivePointStencil;
use fdmax::array::{OffsetSource, Subarray};
use fdmax::mapping::{col_batches, RowRange};
use fdmax::pe::PeConfig;
use fdmax::trace::Trace;
use memmodel::EventCounters;

fn main() {
    // The paper's setup, shrunk to a printable size: a 1x3 chain (PE0 is
    // the first PE, PE2 the last) sweeping a grid column-batch by
    // column-batch. We use an 8x8 grid so the full trace fits a screen;
    // the structure is identical for the paper's 100x100.
    let n = 8;
    let width = 3;
    let cur = Grid2D::from_fn(n, n, |i, j| {
        if i == 0 {
            1.0
        } else {
            ((i * 5 + j * 3) % 7) as f32 / 8.0
        }
    });
    let mut next = cur.clone();
    // Laplace: w_v = w_h = 1/4, no self term, no offset.
    let pe_config = PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false);
    let mut chain = Subarray::new(width, pe_config, 64);
    let mut counters = EventCounters::new();
    let mut trace = Trace::new();

    chain.run_block_traced(
        RowRange {
            out_lo: 1,
            out_hi: n - 1,
        },
        &col_batches(n, width),
        &cur,
        &mut next,
        OffsetSource::None,
        &mut counters,
        Some(&mut trace),
    );

    println!(
        "Fig. 6 — mapping Laplace to a 1x{width} PE chain on an {n}x{n} grid \
         ({} cycles, {} batches)\n",
        trace.len(),
        col_batches(n, width).len()
    );
    print!("{trace}");

    println!("\nProtocol summary:");
    println!("  CurBuffer reads: {}", counters.sram_read);
    println!(
        "  NextBuffer writes (interior outputs): {}",
        counters.sram_write
    );
    println!(
        "  FIFO pushes/pops: {} / {}",
        counters.fifo_push, counters.fifo_pop
    );
    println!(
        "  multiplications: {} ({:.2} per interior point, incl. DIFF)",
        counters.fp_mul,
        counters.fp_mul as f64 / ((n - 2) * (n - 2)) as f64
    );
}
