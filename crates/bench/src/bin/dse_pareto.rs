//! Design-space exploration beyond the paper: sweep array size, bank
//! count, FIFO depth and DRAM bandwidth, then print the Pareto frontier
//! of performance versus area and versus power — the study the paper's
//! "quickly explore the design space" claim enables.

use fdmax::dse::{pareto_frontier, sweep, ProbeWorkload};

fn main() {
    let workload = ProbeWorkload::laplace_10k();
    println!(
        "Design-space exploration on Laplace {}x{} (Jacobi)\n",
        workload.rows, workload.cols
    );

    let points = sweep(
        &workload,
        &[4, 6, 8, 10, 12, 16],
        &[8, 16, 32, 64, 128],
        &[32, 64, 128],
        &[64.0, 128.0, 256.0],
    );
    println!("evaluated {} design points\n", points.len());

    println!("Pareto frontier: performance vs AREA");
    println!("{:<58} {:>12} {:>12}", "design", "Gupd/s", "Gupd/s/mm2");
    for p in pareto_frontier(&points, |p| p.area_mm2) {
        println!(
            "{:<58} {:>12.2} {:>12.2}",
            p.to_string(),
            p.updates_per_second / 1e9,
            p.perf_per_area() / 1e9
        );
    }

    println!("\nPareto frontier: performance vs POWER");
    println!("{:<58} {:>12} {:>14}", "design", "Gupd/s", "pJ/update");
    for p in pareto_frontier(&points, |p| p.power_mw) {
        println!(
            "{:<58} {:>12.2} {:>14.2}",
            p.to_string(),
            p.updates_per_second / 1e9,
            p.energy_per_update_pj(workload.interior())
        );
    }

    // Where does the paper's default sit?
    let default = points
        .iter()
        .find(|p| {
            p.config.pe_rows == 8
                && p.config.buffer_banks == 32
                && p.config.fifo_depth == 64
                && p.config.dram_gb_s == 128.0
        })
        .expect("default point swept");
    println!("\nThe paper's default design point:\n  {default}");
    println!(
        "  ({:.2} Gupd/s/mm2, {:.2} pJ/update)",
        default.perf_per_area() / 1e9,
        default.energy_per_update_pj(workload.interior())
    );
}
