//! Regenerates the paper's Fig. 9: FDMAX scalability with PE-array size.
//!
//! * Part (a): DRAM bandwidth swept from 16 to 256 GB/s, 64 buffer banks.
//! * Part (b): buffer banks swept from 8 to 64, DRAM at 256 GB/s.
//!
//! Benchmark: Laplace on a 10K x 10K grid with the Jacobi method (§7.4).
//! Metric: normalized performance (iterations per second, relative to the
//! slowest configuration in the sub-figure), computed from the
//! simulator-validated performance model.
//!
//! Paper shape to check: near-linear growth up to ~7x7 at high bandwidth,
//! marginal gains past 8x8 (DRAM/SRAM bandwidth bound), and monotone
//! improvement with both DRAM bandwidth and bank count.

use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;

const GRID: usize = 10_000;
const ARRAY_SIZES: [usize; 9] = [4, 5, 6, 7, 8, 9, 10, 11, 12];

fn iterations_per_second(s: usize, dram_gb_s: f64, banks: usize) -> f64 {
    let mut cfg = FdmaxConfig::square(s);
    cfg.dram_gb_s = dram_gb_s;
    cfg.buffer_banks = banks;
    let elastic = ElasticConfig::plan(&cfg, GRID, GRID);
    let est = iteration_estimate(&cfg, &elastic, GRID, GRID, false);
    cfg.clock_hz / est.effective_cycles() as f64
}

fn print_sweep(header: &str, rows: &[(String, Vec<f64>)]) {
    println!("{header}");
    let base = rows
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(f64::INFINITY, f64::min);
    print!("{:<16}", "config \\ SxS");
    for s in ARRAY_SIZES {
        print!(" {:>8}", format!("{s}x{s}"));
    }
    println!();
    for (label, values) in rows {
        print!("{label:<16}");
        for v in values {
            print!(" {:>8.2}", v / base);
        }
        println!();
    }
    println!();
}

fn main() {
    println!("Fig. 9 — Scalability of FDMAX (Laplace {GRID}x{GRID}, Jacobi)");
    println!("values are performance normalized to the slowest point of each sub-figure\n");

    let bw_rows: Vec<(String, Vec<f64>)> = [16.0, 32.0, 64.0, 128.0, 256.0]
        .iter()
        .map(|&bw| {
            (
                format!("{bw:.0} GB/s"),
                ARRAY_SIZES
                    .iter()
                    .map(|&s| iterations_per_second(s, bw, 64))
                    .collect(),
            )
        })
        .collect();
    print_sweep("(a) DRAM bandwidth sweep, 64 banks per buffer", &bw_rows);

    let bank_rows: Vec<(String, Vec<f64>)> = [8usize, 16, 32, 64]
        .iter()
        .map(|&banks| {
            (
                format!("{banks} banks"),
                ARRAY_SIZES
                    .iter()
                    .map(|&s| iterations_per_second(s, 256.0, banks))
                    .collect(),
            )
        })
        .collect();
    print_sweep("(b) buffer bank sweep, DRAM at 256 GB/s", &bank_rows);

    // The two headline shape claims of §7.4.
    let at256: Vec<f64> = ARRAY_SIZES
        .iter()
        .map(|&s| iterations_per_second(s, 256.0, 64))
        .collect();
    let lin_4_to_7 = at256[3] / at256[0]; // 7x7 vs 4x4 -> ~49/16 = 3.06 if linear in PEs
    let gain_8_to_12 = at256[8] / at256[4];
    println!("7x7 / 4x4 at 256 GB/s: {lin_4_to_7:.2}x (linear-in-PEs would be 3.06x)");
    println!("12x12 / 8x8 at 256 GB/s: {gain_8_to_12:.2}x (paper: marginal gain past 8x8)");
}
