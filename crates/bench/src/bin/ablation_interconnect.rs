//! Ablation: interconnection overhead (paper §1/§7.2 "negligible
//! interconnection overhead").
//!
//! Quantifies the chained nearest-neighbour interconnect against a
//! generic mesh `NoC` for the same PE array, and against the whole design's
//! area/energy budget.

use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_counters;
use memmodel::energy::{EnergyBreakdown, OpEnergies, TechnologyNode};
use memmodel::interconnect::{chain_estimate, mesh_estimate};
use memmodel::layout::LayoutReport;

fn main() {
    println!("Interconnect ablation: point-to-point chain vs generic mesh NoC\n");
    println!(
        "{:<8} {:>18} {:>18} {:>14} {:>14}",
        "PEs", "chain area (mm2)", "mesh area (mm2)", "chain pJ/xfer", "mesh pJ/xfer"
    );
    for s in [4usize, 8, 12, 16] {
        let chain = chain_estimate(s * s, 1, TechnologyNode::N32);
        let mesh = mesh_estimate(s * s, TechnologyNode::N32);
        println!(
            "{:<8} {:>18.5} {:>18.5} {:>14.3} {:>14.3}",
            s * s,
            chain.area_mm2,
            mesh.area_mm2,
            chain.energy_per_transfer_pj,
            mesh.energy_per_transfer_pj
        );
    }

    // Put the chain in context of the whole design on a real workload.
    let cfg = FdmaxConfig::paper_default();
    let layout = LayoutReport::new(&cfg.layout_params());
    let chain = chain_estimate(cfg.pe_count(), 1, TechnologyNode::N32);
    println!(
        "\n8x8 design context: chain wiring = {:.3}% of the {:.3} mm2 design",
        100.0 * chain.area_mm2 / layout.total_area_mm2(),
        layout.total_area_mm2()
    );

    // Energy share on one Laplace 1000x1000 iteration: every stage-1
    // cycle broadcasts one partial to both neighbours (one transfer each
    // way).
    let e = ElasticConfig::plan(&cfg, 1_000, 1_000);
    let c = iteration_counters(&cfg, &e, 1_000, 1_000, false, false);
    let transfers = 2 * c.sram_read; // two partial hops per stage-1 input
    let hop_energy_pj = transfers as f64 * chain.energy_per_transfer_pj;
    let total = EnergyBreakdown::from_counters(&c, &OpEnergies::fdmax_32nm());
    println!(
        "per-iteration interconnect energy: {:.3} uJ = {:.3}% of the {:.3} uJ event energy",
        hop_energy_pj / 1e6,
        100.0 * hop_energy_pj / total.total_pj(),
        total.total_pj() / 1e6
    );
    println!(
        "\nThe same traffic on a mesh NoC would cost {:.1}x more interconnect energy — \
         the quantified version of the paper's 'negligible interconnection overhead'.",
        mesh_estimate(cfg.pe_count(), TechnologyNode::N32).energy_per_transfer_pj
            / chain.energy_per_transfer_pj
    );
}
