//! Solver-throughput benchmark for the software kernel layer.
//!
//! Measures sustained MLUP/s (million interior-point **l**attice
//! **up**dates per second) of the f32 Jacobi solve at paper-scale grids
//! for four implementations of the same arithmetic:
//!
//! * `scalar_baseline` — the pre-kernel indexed `(i, j)` loop, kept
//!   verbatim in [`fdm::kernels::baseline`];
//! * `kernelized_serial` — [`SweepEngine`] over the flat row-slice
//!   kernels of [`fdm::kernels`];
//! * `threaded_2` / `threaded_4` — [`ParallelSweepEngine`] with the
//!   interior strip-decomposed over scoped threads.
//!
//! A second, timing-free *identity* section steps Jacobi and
//! Checkerboard at thread counts 1/2/4/7 and records the final residual
//! norm **bit pattern** and iteration count per thread count. A third
//! `matrix_free_cg` row runs the same grid through `KrylovEngine`, a
//! re-run of it, the one-shot `matrix_free_cg` function and the
//! assembled-CSR `conjugate_gradient` oracle, pinning the matrix-free
//! path's bit equivalence with assembly. All rows are asserted equal
//! here and re-validated by CI (`--validate`), keeping host-dependent
//! timings out of the gate.
//!
//! Usage:
//!
//! ```text
//! solver_throughput [--smoke] [--out PATH]   # measure + write JSON
//! solver_throughput --validate PATH          # schema + identity check
//! ```

use std::time::Instant;

use fdm::convergence::StopCondition;
use fdm::engine::{ParallelSweepEngine, Session, SolveEngine, SweepEngine};
use fdm::kernels::baseline::sweep_jacobi_indexed;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::solver::krylov::{conjugate_gradient, matrix_free_cg, KrylovEngine};
use fdm::solver::UpdateMethod;
use fdm::sparse::StencilSystem;
use fdm::workload::benchmark_problem;

/// Paper-scale measurement grids (full mode).
const FULL_SIZES: [usize; 5] = [256, 512, 1024, 2048, 4096];
/// CI smoke grids: the same code paths in a fraction of the time.
const SMOKE_SIZES: [usize; 2] = [64, 128];
/// Thread counts exercised by the identity section.
const ID_THREADS: [usize; 4] = [1, 2, 4, 7];
/// Grid and step count for the identity section (odd size: uneven bands).
const ID_GRID: usize = 65;
const ID_STEPS: usize = 24;

/// Sweeps measured per grid: enough for a stable rate on small grids
/// without making 4096^2 take minutes on one core.
fn steps_for(n: usize) -> usize {
    (200_000_000 / (n * n)).clamp(3, 400)
}

fn problem(n: usize) -> StencilProblem<f32> {
    benchmark_problem::<f32>(PdeKind::Laplace, n, 0).expect("benchmark problem")
}

/// MLUP/s over `steps` sweeps of an `n x n` grid taking `secs` seconds.
fn mlups(n: usize, steps: usize, secs: f64) -> f64 {
    let interior = ((n - 2) * (n - 2)) as f64;
    interior * steps as f64 / secs.max(f64::MIN_POSITIVE) / 1e6
}

/// Times the seed scalar loop (manual double-buffer, like the old solver).
fn time_baseline(sp: &StencilProblem<f32>, steps: usize) -> f64 {
    let mut cur = sp.initial.clone();
    let mut next = cur.clone();
    let mut sink = 0.0f64;
    sink += sweep_jacobi_indexed(&sp.stencil, &sp.offset, &cur, None, &mut next); // warm-up
    core::mem::swap(&mut cur, &mut next);
    let t = Instant::now();
    for _ in 0..steps {
        sink += sweep_jacobi_indexed(&sp.stencil, &sp.offset, &cur, None, &mut next);
        core::mem::swap(&mut cur, &mut next);
    }
    let secs = t.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    secs
}

/// Times any engine through its `step` path (one warm-up sweep first).
fn time_engine<E: SolveEngine>(mut engine: E, steps: usize) -> f64 {
    engine.step();
    let t = Instant::now();
    for _ in 0..steps {
        engine.step();
    }
    t.elapsed().as_secs_f64()
}

struct ThroughputRow {
    grid: usize,
    steps: usize,
    baseline: f64,
    kernelized: f64,
    threaded_2: f64,
    threaded_4: f64,
}

fn measure(sizes: &[usize]) -> Vec<ThroughputRow> {
    sizes
        .iter()
        .map(|&n| {
            let sp = problem(n);
            let steps = steps_for(n);
            let baseline = mlups(n, steps, time_baseline(&sp, steps));
            let kernelized = mlups(
                n,
                steps,
                time_engine(SweepEngine::new(&sp, UpdateMethod::Jacobi), steps),
            );
            let threaded_2 = mlups(
                n,
                steps,
                time_engine(
                    ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 2),
                    steps,
                ),
            );
            let threaded_4 = mlups(
                n,
                steps,
                time_engine(
                    ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 4),
                    steps,
                ),
            );
            println!(
                "{n:>5}^2 ({steps:>3} sweeps): baseline {baseline:8.1} | kernelized \
                 {kernelized:8.1} ({:4.2}x) | 2 threads {threaded_2:8.1} | 4 threads \
                 {threaded_4:8.1} ({:4.2}x)  MLUP/s",
                kernelized / baseline,
                threaded_4 / baseline,
            );
            ThroughputRow {
                grid: n,
                steps,
                baseline,
                kernelized,
                threaded_2,
                threaded_4,
            }
        })
        .collect()
}

struct IdentityRow {
    method: &'static str,
    /// What produced each entry (thread count or solver path).
    variants: Vec<String>,
    /// Final residual-norm bits, one per variant.
    residual_bits: Vec<u64>,
    iterations: Vec<usize>,
}

/// Runs the identity matrix and asserts bit-identical results in-process
/// (the artifact lets CI re-assert it without re-running the engines).
fn identity_matrix() -> Vec<IdentityRow> {
    let sp = problem(ID_GRID);
    [
        (UpdateMethod::Jacobi, "jacobi"),
        (UpdateMethod::Checkerboard, "checkerboard"),
    ]
    .into_iter()
    .map(|(method, name)| {
        let mut residual_bits = Vec::new();
        let mut iterations = Vec::new();
        for threads in ID_THREADS {
            let mut engine = ParallelSweepEngine::new(&sp, method, threads);
            let mut last = 0.0f64;
            for _ in 0..ID_STEPS {
                last = engine.step().norm.expect("sweeps always produce a norm");
            }
            residual_bits.push(last.to_bits());
            iterations.push(engine.iterations());
        }
        assert!(
            residual_bits.iter().all(|&b| b == residual_bits[0]),
            "{name}: residual bits differ across thread counts: {residual_bits:#018x?}"
        );
        assert!(
            iterations.iter().all(|&it| it == ID_STEPS),
            "{name}: iteration counts drifted: {iterations:?}"
        );
        println!(
            "identity {name:>12}: residual bits {:#018x} at every thread count {ID_THREADS:?}",
            residual_bits[0]
        );
        IdentityRow {
            method: name,
            variants: ID_THREADS.iter().map(|t| format!("threads_{t}")).collect(),
            residual_bits,
            iterations,
        }
    })
    .collect()
}

/// The matrix-free CG identity: `KrylovEngine`, a re-run of it, the
/// one-shot `matrix_free_cg` function and a `Session`-driven engine all
/// report the same residual-norm bits and iteration count after
/// [`ID_STEPS`] CG iterations. The assembled-CSR oracle evaluates its
/// rows in a different floating-point order (which CG amplifies), so it
/// agrees to 1e-9 relative rather than bitwise; that bound is asserted
/// in-process.
fn matrix_free_cg_identity() -> IdentityRow {
    let sp = problem(ID_GRID);
    let engine_run = || {
        let mut e = KrylovEngine::new(&sp);
        let mut last = 0.0f64;
        for _ in 0..ID_STEPS {
            last = e.step().norm.expect("CG always yields a norm");
        }
        (last.to_bits(), e.iterations())
    };
    let (bits_a, it_a) = engine_run();
    let (bits_b, it_b) = engine_run();
    let (_, free) = matrix_free_cg(&sp, 0.0, ID_STEPS);

    let mut session = Session::new(KrylovEngine::new(&sp), StopCondition::fixed_steps(ID_STEPS));
    session.run().expect("no policy, no failure");
    let (engine, history) = session.into_parts();
    let session_bits = history.get(ID_STEPS - 1).expect("ran > 0 iters").to_bits();
    let session_iters = engine.iterations();

    let residual_bits = vec![
        bits_a,
        bits_b,
        free.residual_history
            .last()
            .expect("ran > 0 iters")
            .to_bits(),
        session_bits,
    ];
    let iterations = vec![it_a, it_b, free.iterations, session_iters];
    assert!(
        residual_bits.iter().all(|&b| b == residual_bits[0]),
        "matrix_free_cg: residual bits differ across paths: {residual_bits:#018x?}"
    );
    assert!(
        iterations.iter().all(|&it| it == ID_STEPS),
        "matrix_free_cg: iteration counts drifted: {iterations:?}"
    );

    // The CSR oracle: the same trajectory up to summation order, whose
    // last-bit differences CG amplifies over the iterations.
    let sys = StencilSystem::assemble(&sp).expect("steady Laplace assembles");
    let oracle = conjugate_gradient(&sys.matrix, &sys.rhs, 0.0, ID_STEPS);
    let free_norm = f64::from_bits(residual_bits[0]);
    let oracle_norm = *oracle.residual_history.last().expect("ran > 0 iters");
    assert!(
        (free_norm - oracle_norm).abs() <= 1e-9 * oracle_norm.max(f64::MIN_POSITIVE),
        "matrix_free_cg: drifted from the CSR oracle: {free_norm} vs {oracle_norm}"
    );

    println!(
        "identity matrix_free_cg: residual bits {:#018x} across engine/re-run/function/session \
         (CSR oracle within 1e-9: {oracle_norm})",
        residual_bits[0]
    );
    IdentityRow {
        method: "matrix_free_cg",
        variants: [
            "krylov_engine",
            "krylov_engine_rerun",
            "matrix_free_fn",
            "session_driver",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        residual_bits,
        iterations,
    }
}

fn render_json(mode: &str, rows: &[ThroughputRow], identity: &[IdentityRow]) -> String {
    let throughput = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"grid\": {},\n      \"sweeps\": {},\n      \
                 \"scalar_baseline_mlups\": {:.3},\n      \
                 \"kernelized_serial_mlups\": {:.3},\n      \
                 \"threaded_2_mlups\": {:.3},\n      \
                 \"threaded_4_mlups\": {:.3},\n      \
                 \"speedup_kernelized\": {:.3},\n      \
                 \"speedup_threaded_4\": {:.3}\n    }}",
                r.grid,
                r.steps,
                r.baseline,
                r.kernelized,
                r.threaded_2,
                r.threaded_4,
                r.kernelized / r.baseline,
                r.threaded_4 / r.baseline,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let identity = identity
        .iter()
        .map(|row| {
            let bits = row
                .residual_bits
                .iter()
                .map(|b| format!("\"{b:#018x}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let iters = row
                .iterations
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let variants = row
                .variants
                .iter()
                .map(|v| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\n      \"method\": \"{}\",\n      \"grid\": {ID_GRID},\n      \
                 \"steps\": {ID_STEPS},\n      \"variants\": [{variants}],\n      \
                 \"residual_bits\": [{bits}],\n      \"iterations\": [{iters}]\n    }}",
                row.method
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"benchmark\": \"solver_throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"element_type\": \"f32\",\n  \"throughput\": [\n{throughput}\n  ],\n  \
         \"identity\": [\n{identity}\n  ]\n}}\n"
    )
}

/// Extracts every `"key": [ ... ]` array's comma-separated items.
fn json_arrays<'a>(text: &'a str, key: &str) -> Vec<Vec<&'a str>> {
    let needle = format!("\"{key}\": [");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find(']').expect("unterminated array");
        out.push(
            rest[..end]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect(),
        );
        rest = &rest[end..];
    }
    out
}

/// Validates a previously written artifact: required schema keys present
/// and the identity section bit-identical across thread counts. Timings
/// are deliberately **not** checked — they are host properties.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"benchmark\": \"solver_throughput\"",
        "\"throughput\":",
        "\"identity\":",
        "\"scalar_baseline_mlups\":",
        "\"kernelized_serial_mlups\":",
        "\"threaded_4_mlups\":",
        "\"method\": \"matrix_free_cg\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing {key}"));
        }
    }
    let residuals = json_arrays(&text, "residual_bits");
    let iterations = json_arrays(&text, "iterations");
    if residuals.len() < 3 || iterations.len() != residuals.len() {
        return Err(format!(
            "{path}: expected one residual_bits + iterations array per method, \
             got {} and {}",
            residuals.len(),
            iterations.len()
        ));
    }
    for (row, bits) in residuals.iter().enumerate() {
        if bits.len() != ID_THREADS.len() {
            return Err(format!(
                "{path}: identity row {row} has {} residual entries, wanted {}",
                bits.len(),
                ID_THREADS.len()
            ));
        }
        if bits.iter().any(|&b| b != bits[0]) {
            return Err(format!(
                "{path}: identity row {row} is not variant-invariant: {bits:?}"
            ));
        }
    }
    for (row, iters) in iterations.iter().enumerate() {
        if iters.iter().any(|&it| it != iters[0]) {
            return Err(format!(
                "{path}: identity row {row} iteration counts drifted: {iters:?}"
            ));
        }
    }
    println!(
        "{path}: schema ok, {} identity rows bit-identical across threads {ID_THREADS:?}",
        residuals.len()
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_solver.json");
    let mut validate_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--validate" => {
                validate_path = Some(it.next().expect("--validate needs a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = validate_path {
        if let Err(e) = validate(&path) {
            eprintln!("validation failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let wall = Instant::now();
    let (mode, sizes): (&str, &[usize]) = if smoke {
        ("smoke", &SMOKE_SIZES)
    } else {
        ("full", &FULL_SIZES)
    };
    let rows = measure(sizes);
    let mut identity = identity_matrix();
    identity.push(matrix_free_cg_identity());
    let json = render_json(mode, &rows, &identity);
    std::fs::write(&out, &json).expect("write artifact");
    println!(
        "wrote {out} ({mode} mode) in {:.2}s of wall time",
        wall.elapsed().as_secs_f64()
    );
}
