//! Solver-throughput benchmark for the software kernel layer.
//!
//! Measures sustained MLUP/s (million interior-point **l**attice
//! **up**dates per second) of the f32 Jacobi solve at paper-scale grids
//! for the whole ladder of implementations of the same arithmetic:
//!
//! * `scalar_baseline` — the pre-kernel indexed `(i, j)` loop, kept
//!   verbatim in [`fdm::kernels::baseline`];
//! * `kernelized_serial` — a manual double-buffer loop over the
//!   serial-accumulator row kernels of [`fdm::kernels::scalar`] (the
//!   pre-SIMD bodies, kept as the differential oracle);
//! * `simd_serial` — [`SweepEngine`] over the lane-folded flat-row
//!   kernels of [`fdm::kernels`];
//! * `threaded_2` / `threaded_4` — [`ParallelSweepEngine`] with the
//!   interior strip-decomposed over scoped threads (the threaded engine
//!   only has the lane-folded path, so `threaded_4` doubles as the
//!   `simd_threaded` column);
//! * `tiled_k2` / `tiled_k4` / `tiled_k8` — [`TiledSweepEngine`] at 4
//!   threads, fusing k sweeps per cache pass over a skewed row
//!   wavefront. MLUP/s counts *useful* updates (`interior x k` per
//!   epoch); the halo trapezoid's redundant rows are charged to the
//!   variant, not hidden.
//!
//! A `roofline` block pins the memory-wall story: a streamed-copy probe
//! measures attainable bandwidth, the analytic traffic model prices the
//! untiled sweep at 12 bytes/LUP (f32 read + write-allocate + write)
//! and the k-deep tile at 12/k, and each variant's achieved MLUP/s is
//! reported against its attainable ceiling.
//!
//! A timing-free *identity* section records residual-norm or
//! field-checksum **bit patterns** per variant, each row tagged with its
//! contract: `bitwise` rows must agree exactly (Jacobi/Checkerboard
//! across thread counts 1/2/4/7; the final *field* across
//! baseline/scalar-rows/SIMD/threaded paths — lane-folding regroups only
//! the diff² reduction, never the field), `tolerance` rows within 1e-9
//! relative (the tiled engine's documented contract, and the CSR CG
//! oracle whose summation order CG amplifies). All rows are asserted
//! in-process and re-validated by CI (`--validate`), keeping
//! host-dependent timings out of the gate.
//!
//! Usage:
//!
//! ```text
//! solver_throughput [--smoke] [--out PATH]   # measure + write JSON
//! solver_throughput --validate PATH          # schema + identity check
//! ```

use std::time::Instant;

use fdm::convergence::StopCondition;
use fdm::engine::{ParallelSweepEngine, Session, SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::kernels::baseline::sweep_jacobi_indexed;
use fdm::kernels::OffsetRow;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::solver::krylov::{conjugate_gradient, matrix_free_cg, KrylovEngine};
use fdm::solver::UpdateMethod;
use fdm::sparse::StencilSystem;
use fdm::tiled::TiledSweepEngine;
use fdm::workload::benchmark_problem;

/// Paper-scale measurement grids (full mode).
const FULL_SIZES: [usize; 5] = [256, 512, 1024, 2048, 4096];
/// CI smoke grids: the same code paths in a fraction of the time.
const SMOKE_SIZES: [usize; 2] = [64, 128];
/// Thread counts exercised by the identity section.
const ID_THREADS: [usize; 4] = [1, 2, 4, 7];
/// Grid and step count for the identity section (odd size: uneven
/// bands; 24 steps divide evenly into every tile depth).
const ID_GRID: usize = 65;
const ID_STEPS: usize = 24;
/// Tile depths measured per grid (threads from [`tile_threads`]).
const TILE_DEPTHS: [usize; 3] = [2, 4, 8];

/// Threads driving the tiled wavefront: the host's real parallelism,
/// capped at 4 so the column stays comparable to `threaded_4`. On a
/// single-core host this degrades to the serial wavefront — pure cache
/// blocking — instead of charging thread-churn to the tiling story.
fn tile_threads() -> usize {
    std::thread::available_parallelism()
        .map_or(1, std::num::NonZeroUsize::get)
        .min(4)
}
/// Analytic traffic of one untiled f32 Jacobi update once the grid
/// spills the cache: read `cur` (4 B, the three-row window is streamed
/// once) + write-allocate `next` (4 B) + write back (4 B).
const BYTES_PER_LUP_UNTILED: f64 = 12.0;

/// Sweeps measured per grid: enough for a stable rate on small grids
/// without making 4096^2 take minutes on one core.
fn steps_for(n: usize) -> usize {
    (200_000_000 / (n * n)).clamp(3, 400)
}

fn problem(n: usize) -> StencilProblem<f32> {
    benchmark_problem::<f32>(PdeKind::Laplace, n, 0).expect("benchmark problem")
}

/// MLUP/s over `steps` sweeps of an `n x n` grid taking `secs` seconds.
fn mlups(n: usize, steps: usize, secs: f64) -> f64 {
    let interior = ((n - 2) * (n - 2)) as f64;
    interior * steps as f64 / secs.max(f64::MIN_POSITIVE) / 1e6
}

/// Times the seed scalar loop (manual double-buffer, like the old solver).
fn time_baseline(sp: &StencilProblem<f32>, steps: usize) -> f64 {
    let mut cur = sp.initial.clone();
    let mut next = cur.clone();
    let mut sink = 0.0f64;
    sink += sweep_jacobi_indexed(&sp.stencil, &sp.offset, &cur, None, &mut next); // warm-up
    core::mem::swap(&mut cur, &mut next);
    let t = Instant::now();
    for _ in 0..steps {
        sink += sweep_jacobi_indexed(&sp.stencil, &sp.offset, &cur, None, &mut next);
        core::mem::swap(&mut cur, &mut next);
    }
    let secs = t.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    secs
}

/// One whole-grid Jacobi sweep through the serial-accumulator row
/// kernels of [`fdm::kernels::scalar`] — the pre-SIMD bodies.
fn sweep_scalar_rows(sp: &StencilProblem<f32>, cur: &Grid2D<f32>, next: &mut Grid2D<f32>) -> f64 {
    let (rows, cols) = (cur.rows(), cur.cols());
    let mut diff2 = 0.0f64;
    let src = cur.as_slice();
    let dst = next.as_mut_slice();
    for i in 1..rows.saturating_sub(1) {
        let offset = OffsetRow::for_row(&sp.offset, None, i);
        diff2 += fdm::kernels::scalar::jacobi_row(
            &sp.stencil,
            &src[(i - 1) * cols..i * cols],
            &src[i * cols..(i + 1) * cols],
            &src[(i + 1) * cols..(i + 2) * cols],
            offset,
            &mut dst[i * cols..(i + 1) * cols],
        );
    }
    diff2
}

/// Times the scalar-oracle row kernels (manual double-buffer).
fn time_scalar_rows(sp: &StencilProblem<f32>, steps: usize) -> f64 {
    let mut cur = sp.initial.clone();
    let mut next = cur.clone();
    let mut sink = sweep_scalar_rows(sp, &cur, &mut next); // warm-up
    core::mem::swap(&mut cur, &mut next);
    let t = Instant::now();
    for _ in 0..steps {
        sink += sweep_scalar_rows(sp, &cur, &mut next);
        core::mem::swap(&mut cur, &mut next);
    }
    let secs = t.elapsed().as_secs_f64();
    assert!(sink.is_finite());
    secs
}

/// Times any engine through its `step` path (one warm-up step first).
/// For the tiled engine a step is a whole epoch of `k` sweeps — the
/// caller scales the LUP count accordingly.
fn time_engine<E: SolveEngine>(mut engine: E, steps: usize) -> f64 {
    engine.step();
    let t = Instant::now();
    for _ in 0..steps {
        engine.step();
    }
    t.elapsed().as_secs_f64()
}

struct ThroughputRow {
    grid: usize,
    steps: usize,
    baseline: f64,
    scalar_rows: f64,
    simd: f64,
    threaded_2: f64,
    threaded_4: f64,
    /// MLUP/s per entry of [`TILE_DEPTHS`].
    tiled: [f64; TILE_DEPTHS.len()],
}

fn measure(sizes: &[usize]) -> Vec<ThroughputRow> {
    sizes
        .iter()
        .map(|&n| {
            let sp = problem(n);
            let steps = steps_for(n);
            let baseline = mlups(n, steps, time_baseline(&sp, steps));
            let scalar_rows = mlups(n, steps, time_scalar_rows(&sp, steps));
            let simd = mlups(
                n,
                steps,
                time_engine(SweepEngine::new(&sp, UpdateMethod::Jacobi), steps),
            );
            let threaded_2 = mlups(
                n,
                steps,
                time_engine(
                    ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 2),
                    steps,
                ),
            );
            let threaded_4 = mlups(
                n,
                steps,
                time_engine(
                    ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 4),
                    steps,
                ),
            );
            let mut tiled = [0.0; TILE_DEPTHS.len()];
            for (slot, k) in TILE_DEPTHS.into_iter().enumerate() {
                let epochs = (steps / k).max(1);
                tiled[slot] = mlups(
                    n,
                    epochs * k,
                    time_engine(
                        TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, k, tile_threads()),
                        epochs,
                    ),
                );
            }
            println!(
                "{n:>5}^2 ({steps:>3} sweeps): baseline {baseline:8.1} | rows {scalar_rows:8.1} | \
                 simd {simd:8.1} ({:4.2}x) | 4 threads {threaded_4:8.1} | tiled k4 {:8.1} \
                 ({:4.2}x)  MLUP/s",
                simd / baseline,
                tiled[1],
                tiled[1] / baseline,
            );
            ThroughputRow {
                grid: n,
                steps,
                baseline,
                scalar_rows,
                simd,
                threaded_2,
                threaded_4,
                tiled,
            }
        })
        .collect()
}

/// Attainable-bandwidth probe: streams a grid-sized copy and prices it
/// with the same 12 B/element convention as [`BYTES_PER_LUP_UNTILED`]
/// (read + write-allocate + write), so "attainable MLUP/s" and
/// "achieved MLUP/s" sit on the same roofline.
fn stream_bandwidth_gbps(bytes: usize) -> f64 {
    let len = (bytes / 4).max(1);
    let src = vec![1.0f32; len];
    let mut dst = vec![0.0f32; len];
    dst.copy_from_slice(&src); // warm-up: page the buffers in
    let passes = 8;
    let t = Instant::now();
    for _ in 0..passes {
        dst.copy_from_slice(&src);
        std::hint::black_box(&mut dst);
    }
    let secs = t.elapsed().as_secs_f64();
    passes as f64 * len as f64 * 12.0 / secs.max(f64::MIN_POSITIVE) / 1e9
}

struct RooflineRow {
    variant: String,
    bytes_per_lup: f64,
    attainable_mlups: f64,
    achieved_mlups: f64,
}

struct Roofline {
    grid: usize,
    stream_gbps: f64,
    rows: Vec<RooflineRow>,
}

/// Builds the roofline block from the largest measured grid: the tiled
/// variants divide the per-LUP traffic by k, lifting the bandwidth
/// ceiling in proportion.
fn roofline(rows: &[ThroughputRow]) -> Roofline {
    let top = rows.last().expect("at least one grid measured");
    let bytes = top.grid * top.grid * 4 * 2;
    let stream_gbps = stream_bandwidth_gbps(bytes);
    let attainable = |bytes_per_lup: f64| stream_gbps * 1e9 / bytes_per_lup / 1e6;
    let mut out = vec![
        RooflineRow {
            variant: "simd_serial".into(),
            bytes_per_lup: BYTES_PER_LUP_UNTILED,
            attainable_mlups: attainable(BYTES_PER_LUP_UNTILED),
            achieved_mlups: top.simd,
        },
        RooflineRow {
            variant: "simd_threaded".into(),
            bytes_per_lup: BYTES_PER_LUP_UNTILED,
            attainable_mlups: attainable(BYTES_PER_LUP_UNTILED),
            achieved_mlups: top.threaded_4,
        },
    ];
    for (slot, k) in TILE_DEPTHS.into_iter().enumerate() {
        let bpl = BYTES_PER_LUP_UNTILED / k as f64;
        out.push(RooflineRow {
            variant: format!("tiled_k{k}"),
            bytes_per_lup: bpl,
            attainable_mlups: attainable(bpl),
            achieved_mlups: top.tiled[slot],
        });
    }
    for row in &out {
        println!(
            "roofline {:>14}: {:5.2} B/LUP, attainable {:9.1} MLUP/s, achieved {:9.1} \
             ({:5.1}% of ceiling)",
            row.variant,
            row.bytes_per_lup,
            row.attainable_mlups,
            row.achieved_mlups,
            100.0 * row.achieved_mlups / row.attainable_mlups.max(f64::MIN_POSITIVE),
        );
    }
    Roofline {
        grid: top.grid,
        stream_gbps,
        rows: out,
    }
}

/// Per-row agreement contract of the identity section.
#[derive(Clone, Copy, PartialEq)]
enum Contract {
    /// Every variant's bits must be exactly equal.
    Bitwise,
    /// Entries are f64 bit patterns agreeing within 1e-9 relative.
    Tolerance,
}

impl Contract {
    fn name(self) -> &'static str {
        match self {
            Contract::Bitwise => "bitwise",
            Contract::Tolerance => "tolerance",
        }
    }
}

struct IdentityRow {
    method: &'static str,
    contract: Contract,
    /// What produced each entry (thread count or solver path).
    variants: Vec<String>,
    /// Final residual-norm (or field-checksum) bits, one per variant.
    residual_bits: Vec<u64>,
    iterations: Vec<usize>,
}

/// Order-sensitive FNV-1a over the field's f32 bit patterns in row-major
/// order: two fields checksum equal iff they are bitwise identical.
fn field_checksum(grid: &Grid2D<f32>) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for x in grid.as_slice() {
        h ^= u64::from(x.to_bits());
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Runs the identity matrix and asserts bit-identical results in-process
/// (the artifact lets CI re-assert it without re-running the engines).
fn identity_matrix() -> Vec<IdentityRow> {
    let sp = problem(ID_GRID);
    [
        (UpdateMethod::Jacobi, "jacobi"),
        (UpdateMethod::Checkerboard, "checkerboard"),
    ]
    .into_iter()
    .map(|(method, name)| {
        let mut residual_bits = Vec::new();
        let mut iterations = Vec::new();
        for threads in ID_THREADS {
            let mut engine = ParallelSweepEngine::new(&sp, method, threads);
            let mut last = 0.0f64;
            for _ in 0..ID_STEPS {
                last = engine.step().norm.expect("sweeps always produce a norm");
            }
            residual_bits.push(last.to_bits());
            iterations.push(engine.iterations());
        }
        assert!(
            residual_bits.iter().all(|&b| b == residual_bits[0]),
            "{name}: residual bits differ across thread counts: {residual_bits:#018x?}"
        );
        assert!(
            iterations.iter().all(|&it| it == ID_STEPS),
            "{name}: iteration counts drifted: {iterations:?}"
        );
        println!(
            "identity {name:>12}: residual bits {:#018x} at every thread count {ID_THREADS:?}",
            residual_bits[0]
        );
        IdentityRow {
            method: name,
            contract: Contract::Bitwise,
            variants: ID_THREADS.iter().map(|t| format!("threads_{t}")).collect(),
            residual_bits,
            iterations,
        }
    })
    .collect()
}

/// The SIMD field identity: after [`ID_STEPS`] Jacobi sweeps the final
/// *field* is bitwise identical across the baseline indexed loop, the
/// scalar-oracle row kernels, the lane-folded serial engine and the
/// strip-parallel engine — lane-folding regroups only the diff²
/// reduction, never the per-element stencil arithmetic. Recorded as an
/// order-sensitive FNV-1a checksum of the field bits.
fn simd_field_identity() -> IdentityRow {
    let sp = problem(ID_GRID);

    let mut cur = sp.initial.clone();
    let mut next = cur.clone();
    for _ in 0..ID_STEPS {
        let _ = sweep_jacobi_indexed(&sp.stencil, &sp.offset, &cur, None, &mut next);
        core::mem::swap(&mut cur, &mut next);
    }
    let baseline_sum = field_checksum(&cur);

    let mut cur = sp.initial.clone();
    let mut next = cur.clone();
    for _ in 0..ID_STEPS {
        let _ = sweep_scalar_rows(&sp, &cur, &mut next);
        core::mem::swap(&mut cur, &mut next);
    }
    let scalar_sum = field_checksum(&cur);

    let mut serial = SweepEngine::new(&sp, UpdateMethod::Jacobi);
    let mut threaded = ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 4);
    for _ in 0..ID_STEPS {
        serial.step();
        threaded.step();
    }

    let residual_bits = vec![
        baseline_sum,
        scalar_sum,
        field_checksum(serial.solution()),
        field_checksum(threaded.solution()),
    ];
    let iterations = vec![ID_STEPS, ID_STEPS, serial.iterations(), threaded.iterations()];
    assert!(
        residual_bits.iter().all(|&b| b == residual_bits[0]),
        "simd_field: field checksums differ across kernel paths: {residual_bits:#018x?}"
    );
    println!(
        "identity   simd_field: field checksum {:#018x} across baseline/scalar/simd/threaded",
        residual_bits[0]
    );
    IdentityRow {
        method: "simd_field",
        contract: Contract::Bitwise,
        variants: ["baseline_indexed", "scalar_rows", "simd_serial", "simd_threads_4"]
            .iter()
            .map(ToString::to_string)
            .collect(),
        residual_bits,
        iterations,
    }
}

/// The tiled tolerance identity: [`ID_STEPS`] sweeps through the serial
/// engine versus whole tiled epochs at every [`TILE_DEPTHS`] entry land
/// on the same final residual norm within the engine's documented 1e-12
/// relative contract (asserted here; the artifact carries the bits under
/// the looser 1e-9 `tolerance` tag CI re-checks).
fn tiled_identity() -> IdentityRow {
    let sp = problem(ID_GRID);
    let mut serial = SweepEngine::new(&sp, UpdateMethod::Jacobi);
    let mut last = 0.0f64;
    for _ in 0..ID_STEPS {
        last = serial.step().norm.expect("sweeps always produce a norm");
    }
    let mut variants = vec!["serial".to_string()];
    let mut residual_bits = vec![last.to_bits()];
    let mut iterations = vec![serial.iterations()];
    for k in TILE_DEPTHS {
        let mut tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, k, tile_threads());
        let mut norm = 0.0f64;
        for _ in 0..ID_STEPS / k {
            norm = tiled.step().norm.expect("epochs always produce a norm");
        }
        let rel = (norm - last).abs() / last.abs().max(f64::MIN_POSITIVE);
        assert!(
            rel <= 1e-12,
            "tiled_jacobi k={k}: norm {norm} vs serial {last} (rel {rel:.3e})"
        );
        variants.push(format!("tiled_k{k}_threads_{}", tile_threads()));
        residual_bits.push(norm.to_bits());
        iterations.push(tiled.iterations());
    }
    assert!(
        iterations.iter().all(|&it| it == ID_STEPS),
        "tiled_jacobi: iteration counts drifted: {iterations:?}"
    );
    println!(
        "identity tiled_jacobi: serial norm bits {:#018x}, tiled within 1e-12 at k {TILE_DEPTHS:?}",
        residual_bits[0]
    );
    IdentityRow {
        method: "tiled_jacobi",
        contract: Contract::Tolerance,
        variants,
        residual_bits,
        iterations,
    }
}

/// The matrix-free CG identity: `KrylovEngine`, a re-run of it, the
/// one-shot `matrix_free_cg` function and a `Session`-driven engine all
/// report the same residual-norm bits and iteration count after
/// [`ID_STEPS`] CG iterations. The assembled-CSR oracle evaluates its
/// rows in a different floating-point order (which CG amplifies), so it
/// agrees to 1e-9 relative rather than bitwise; that bound is asserted
/// in-process.
fn matrix_free_cg_identity() -> IdentityRow {
    let sp = problem(ID_GRID);
    let engine_run = || {
        let mut e = KrylovEngine::new(&sp);
        let mut last = 0.0f64;
        for _ in 0..ID_STEPS {
            last = e.step().norm.expect("CG always yields a norm");
        }
        (last.to_bits(), e.iterations())
    };
    let (bits_a, it_a) = engine_run();
    let (bits_b, it_b) = engine_run();
    let (_, free) = matrix_free_cg(&sp, 0.0, ID_STEPS);

    let mut session = Session::new(KrylovEngine::new(&sp), StopCondition::fixed_steps(ID_STEPS));
    session.run().expect("no policy, no failure");
    let (engine, history) = session.into_parts();
    let session_bits = history.get(ID_STEPS - 1).expect("ran > 0 iters").to_bits();
    let session_iters = engine.iterations();

    let residual_bits = vec![
        bits_a,
        bits_b,
        free.residual_history
            .last()
            .expect("ran > 0 iters")
            .to_bits(),
        session_bits,
    ];
    let iterations = vec![it_a, it_b, free.iterations, session_iters];
    assert!(
        residual_bits.iter().all(|&b| b == residual_bits[0]),
        "matrix_free_cg: residual bits differ across paths: {residual_bits:#018x?}"
    );
    assert!(
        iterations.iter().all(|&it| it == ID_STEPS),
        "matrix_free_cg: iteration counts drifted: {iterations:?}"
    );

    // The CSR oracle: the same trajectory up to summation order, whose
    // last-bit differences CG amplifies over the iterations.
    let sys = StencilSystem::assemble(&sp).expect("steady Laplace assembles");
    let oracle = conjugate_gradient(&sys.matrix, &sys.rhs, 0.0, ID_STEPS);
    let free_norm = f64::from_bits(residual_bits[0]);
    let oracle_norm = *oracle.residual_history.last().expect("ran > 0 iters");
    assert!(
        (free_norm - oracle_norm).abs() <= 1e-9 * oracle_norm.max(f64::MIN_POSITIVE),
        "matrix_free_cg: drifted from the CSR oracle: {free_norm} vs {oracle_norm}"
    );

    println!(
        "identity matrix_free_cg: residual bits {:#018x} across engine/re-run/function/session \
         (CSR oracle within 1e-9: {oracle_norm})",
        residual_bits[0]
    );
    IdentityRow {
        method: "matrix_free_cg",
        contract: Contract::Bitwise,
        variants: [
            "krylov_engine",
            "krylov_engine_rerun",
            "matrix_free_fn",
            "session_driver",
        ]
        .iter()
        .map(ToString::to_string)
        .collect(),
        residual_bits,
        iterations,
    }
}

fn render_json(
    mode: &str,
    rows: &[ThroughputRow],
    roof: &Roofline,
    identity: &[IdentityRow],
) -> String {
    let throughput = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"grid\": {},\n      \"sweeps\": {},\n      \
                 \"scalar_baseline_mlups\": {:.3},\n      \
                 \"kernelized_serial_mlups\": {:.3},\n      \
                 \"simd_serial_mlups\": {:.3},\n      \
                 \"threaded_2_mlups\": {:.3},\n      \
                 \"threaded_4_mlups\": {:.3},\n      \
                 \"simd_threaded_mlups\": {:.3},\n      \
                 \"tiled_k2_mlups\": {:.3},\n      \
                 \"tiled_k4_mlups\": {:.3},\n      \
                 \"tiled_k8_mlups\": {:.3},\n      \
                 \"speedup_kernelized\": {:.3},\n      \
                 \"speedup_simd\": {:.3},\n      \
                 \"speedup_threaded_4\": {:.3},\n      \
                 \"speedup_tiled_k4\": {:.3}\n    }}",
                r.grid,
                r.steps,
                r.baseline,
                r.scalar_rows,
                r.simd,
                r.threaded_2,
                r.threaded_4,
                r.threaded_4,
                r.tiled[0],
                r.tiled[1],
                r.tiled[2],
                r.scalar_rows / r.baseline,
                r.simd / r.baseline,
                r.threaded_4 / r.baseline,
                r.tiled[1] / r.baseline,
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let roof_rows = roof
        .rows
        .iter()
        .map(|r| {
            format!(
                "      {{\n        \"variant\": \"{}\",\n        \
                 \"bytes_per_lup\": {:.3},\n        \
                 \"attainable_mlups\": {:.3},\n        \
                 \"achieved_mlups\": {:.3},\n        \
                 \"ceiling_fraction\": {:.4}\n      }}",
                r.variant,
                r.bytes_per_lup,
                r.attainable_mlups,
                r.achieved_mlups,
                r.achieved_mlups / r.attainable_mlups.max(f64::MIN_POSITIVE),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let roofline = format!(
        "  \"roofline\": {{\n    \"grid\": {},\n    \
         \"stream_bandwidth_gbps\": {:.3},\n    \"rows\": [\n{roof_rows}\n    ]\n  }}",
        roof.grid, roof.stream_gbps,
    );
    let identity = identity
        .iter()
        .map(|row| {
            let bits = row
                .residual_bits
                .iter()
                .map(|b| format!("\"{b:#018x}\""))
                .collect::<Vec<_>>()
                .join(", ");
            let iters = row
                .iterations
                .iter()
                .map(usize::to_string)
                .collect::<Vec<_>>()
                .join(", ");
            let variants = row
                .variants
                .iter()
                .map(|v| format!("\"{v}\""))
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                "    {{\n      \"method\": \"{}\",\n      \"contract\": \"{}\",\n      \
                 \"grid\": {ID_GRID},\n      \
                 \"steps\": {ID_STEPS},\n      \"variants\": [{variants}],\n      \
                 \"residual_bits\": [{bits}],\n      \"iterations\": [{iters}]\n    }}",
                row.method,
                row.contract.name(),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"benchmark\": \"solver_throughput\",\n  \"mode\": \"{mode}\",\n  \
         \"element_type\": \"f32\",\n  \"throughput\": [\n{throughput}\n  ],\n\
         {roofline},\n  \
         \"identity\": [\n{identity}\n  ]\n}}\n"
    )
}

/// Extracts every `"key": [ ... ]` array's comma-separated items.
fn json_arrays<'a>(text: &'a str, key: &str) -> Vec<Vec<&'a str>> {
    let needle = format!("\"{key}\": [");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find(']').expect("unterminated array");
        out.push(
            rest[..end]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .collect(),
        );
        rest = &rest[end..];
    }
    out
}

/// Extracts every `"key": "value"` string in order of appearance.
fn json_strings<'a>(text: &'a str, key: &str) -> Vec<&'a str> {
    let needle = format!("\"{key}\": \"");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(pos) = rest.find(&needle) {
        rest = &rest[pos + needle.len()..];
        let end = rest.find('"').expect("unterminated string");
        out.push(&rest[..end]);
        rest = &rest[end..];
    }
    out
}

/// Validates a previously written artifact: required schema keys present
/// and every identity row honouring its tagged contract — `bitwise`
/// rows exactly variant-invariant, `tolerance` rows (tiled epochs, the
/// CSR oracle) within 1e-9 relative across their f64 norm bits. Timings
/// are deliberately **not** checked — they are host properties.
fn validate(path: &str) -> Result<(), String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    for key in [
        "\"benchmark\": \"solver_throughput\"",
        "\"throughput\":",
        "\"roofline\":",
        "\"identity\":",
        "\"scalar_baseline_mlups\":",
        "\"kernelized_serial_mlups\":",
        "\"simd_serial_mlups\":",
        "\"simd_threaded_mlups\":",
        "\"tiled_k2_mlups\":",
        "\"tiled_k4_mlups\":",
        "\"tiled_k8_mlups\":",
        "\"stream_bandwidth_gbps\":",
        "\"bytes_per_lup\":",
        "\"method\": \"simd_field\"",
        "\"method\": \"tiled_jacobi\"",
        "\"method\": \"matrix_free_cg\"",
    ] {
        if !text.contains(key) {
            return Err(format!("{path}: missing {key}"));
        }
    }
    let residuals = json_arrays(&text, "residual_bits");
    let iterations = json_arrays(&text, "iterations");
    let contracts = json_strings(&text, "contract");
    if residuals.len() < 5
        || iterations.len() != residuals.len()
        || contracts.len() != residuals.len()
    {
        return Err(format!(
            "{path}: expected one residual_bits + iterations + contract per method, \
             got {}, {} and {}",
            residuals.len(),
            iterations.len(),
            contracts.len()
        ));
    }
    for (row, (bits, contract)) in residuals.iter().zip(&contracts).enumerate() {
        if bits.len() < 2 {
            return Err(format!(
                "{path}: identity row {row} has {} residual entries, wanted >= 2",
                bits.len()
            ));
        }
        match *contract {
            "bitwise" => {
                if bits.iter().any(|&b| b != bits[0]) {
                    return Err(format!(
                        "{path}: bitwise identity row {row} is not variant-invariant: {bits:?}"
                    ));
                }
            }
            "tolerance" => {
                let norms: Vec<f64> = bits
                    .iter()
                    .map(|b| {
                        let hex = b.trim_matches('"').trim_start_matches("0x");
                        u64::from_str_radix(hex, 16)
                            .map(f64::from_bits)
                            .map_err(|e| format!("{path}: row {row}: bad bit pattern {b}: {e}"))
                    })
                    .collect::<Result<_, _>>()?;
                for (v, &n) in norms.iter().enumerate() {
                    let rel = (n - norms[0]).abs() / norms[0].abs().max(f64::MIN_POSITIVE);
                    if rel > 1e-9 {
                        return Err(format!(
                            "{path}: tolerance identity row {row} variant {v} drifted: \
                             {n} vs {} (rel {rel:.3e})",
                            norms[0]
                        ));
                    }
                }
            }
            other => {
                return Err(format!(
                    "{path}: identity row {row} has unknown contract {other:?}"
                ));
            }
        }
    }
    for (row, iters) in iterations.iter().enumerate() {
        if iters.iter().any(|&it| it != iters[0]) {
            return Err(format!(
                "{path}: identity row {row} iteration counts drifted: {iters:?}"
            ));
        }
    }
    println!(
        "{path}: schema ok, {} identity rows honour their contracts ({} bitwise, {} tolerance)",
        residuals.len(),
        contracts.iter().filter(|c| **c == "bitwise").count(),
        contracts.iter().filter(|c| **c == "tolerance").count(),
    );
    Ok(())
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut smoke = false;
    let mut out = String::from("BENCH_solver.json");
    let mut validate_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = it.next().expect("--out needs a path").clone(),
            "--validate" => {
                validate_path = Some(it.next().expect("--validate needs a path").clone());
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }

    if let Some(path) = validate_path {
        if let Err(e) = validate(&path) {
            eprintln!("validation failed: {e}");
            std::process::exit(1);
        }
        return;
    }

    let wall = Instant::now();
    let (mode, sizes): (&str, &[usize]) = if smoke {
        ("smoke", &SMOKE_SIZES)
    } else {
        ("full", &FULL_SIZES)
    };
    let rows = measure(sizes);
    let roof = roofline(&rows);
    let mut identity = identity_matrix();
    identity.push(simd_field_identity());
    identity.push(tiled_identity());
    identity.push(matrix_free_cg_identity());
    let json = render_json(mode, &rows, &roof, &identity);
    std::fs::write(&out, &json).expect("write artifact");
    println!(
        "wrote {out} ({mode} mode) in {:.2}s of wall time",
        wall.elapsed().as_secs_f64()
    );
}
