//! Extension study (beyond the paper): 3-D PDEs on the unmodified 2-D
//! FDMAX array via plane sweeps.
//!
//! Prior accelerators with 3-D support (Table 2: Mu et al.) are locked to
//! tiny fixed volumes (16x16x16). FDMAX's `OffsetBuffer` makes arbitrary
//! 3-D grids reachable with **zero hardware changes**: the seven-point
//! stencil splits into a cross-plane coupling pass (the z-neighbours
//! enter through the offset port) and the ordinary in-plane pass — 2x
//! the passes of a 2-D solve. This binary validates the mapping
//! numerically and reports the modelled cost.

use fdm::volume::{laplace3d_benchmark, laplace3d_sine_face, SevenPointStencil};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;
use fdmax::volume::VolumeSolver;

fn main() {
    let cfg = FdmaxConfig::paper_default();
    println!("3-D Laplace on the 2-D FDMAX array (plane-sweep mapping)\n");

    // Functional validation on a small cube, run through the
    // cycle-accurate model itself.
    let n = 13;
    let stencil = SevenPointStencil::<f32>::laplace_uniform();
    let mut cur = laplace3d_benchmark::<f32>(n, n, n);
    let mut next = cur.clone();
    let mut vs = VolumeSolver::new(cfg, n, n).expect("valid config");
    let mut norm = f64::INFINITY;
    let mut iters = 0usize;
    while norm > 1e-4 && iters < 5_000 {
        norm = vs.step(&stencil, &cur, &mut next);
        core::mem::swap(&mut cur, &mut next);
        iters += 1;
    }
    let exact = laplace3d_sine_face(n, n, n).convert::<f32>();
    println!(
        "{n}^3 cube: {iters} iterations to ||dU|| <= 1e-4; max error vs exact separable \
         solution {:.3e}",
        cur.diff_max(&exact)
    );
    println!(
        "cycle-accurate run: {} cycles, {} multiplications, elastic config {}\n",
        vs.counters().cycles,
        vs.counters().fp_mul,
        vs.elastic()
    );

    // Modelled cost at larger volumes: cycles per 3-D iteration =
    // 2 passes x (planes - 2) x per-plane cost.
    println!(
        "{:<12} {:>14} {:>18} {:>20}",
        "volume", "planes*2 passes", "cycles/iteration", "ms/iteration @200MHz"
    );
    for n in [64usize, 128, 256, 512] {
        let elastic = ElasticConfig::plan(&cfg, n, n);
        let per_pass = iteration_estimate(&cfg, &elastic, n, n, true).effective_cycles();
        let cycles = 2 * per_pass * (n as u64 - 2);
        println!(
            "{:<12} {:>14} {:>18} {:>20.3}",
            format!("{n}^3"),
            2 * (n - 2),
            cycles,
            cycles as f64 / 200e6 * 1e3
        );
    }

    println!(
        "\nTakeaway: a {0}x{0}x{0} volume costs exactly 2x the passes of {0} independent \
         2-D solves — no reconfiguration beyond the weight registers and the offset port \
         the paper already specifies. The 16x16x16 ceiling of prior 3-D accelerators \
         (Table 2) does not apply.",
        256
    );
}
