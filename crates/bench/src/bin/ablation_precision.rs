//! Ablation: the f32 iteration penalty (paper §7.2).
//!
//! The paper observes FDMAX-J/FDMAX-H running ~80%/~60% more iterations
//! than the f64 CPU baseline on Laplace/Poisson because of 32-bit
//! arithmetic. Measuring this against the update-norm stop condition is
//! misleading — rounding makes f32 *stall to an exact fixed point*, which
//! the stop condition mistakes for convergence (the same artifact f16
//! shows in Fig. 1a). This binary instead measures iterations to reach a
//! given **solution error** against a tightly converged f64 reference:
//! the honest form of the claim. f32 tracks f64 down to its accuracy
//! floor and then needs increasingly many extra iterations, eventually
//! never reaching the level at all.

use fdm::convergence::StopCondition;
use fdm::grid::Grid2D;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::precision::Scalar;
use fdm::solver::{solve, UpdateMethod};
use fdm::workload::benchmark_problem;

const N: usize = 100;
const BUDGET: usize = 60_000;
const LEVELS: [f64; 6] = [1e-2, 1e-3, 1e-4, 3e-5, 1e-5, 1e-6];

/// Iterations needed to bring `max|u - reference|` to each level.
fn iterations_to_error_levels<T: Scalar>(
    method: UpdateMethod,
    reference: &Grid2D<f64>,
) -> Vec<Option<usize>> {
    let sp: StencilProblem<T> = benchmark_problem(PdeKind::Laplace, N, 0).unwrap();
    let mut reached: Vec<Option<usize>> = vec![None; LEVELS.len()];
    // Step in chunks to keep the error probing cheap.
    let chunk = 100usize;
    let mut problem = sp.clone();
    let mut done_iters = 0usize;
    while done_iters < BUDGET {
        let r = solve(&problem, method, &StopCondition::fixed_steps(chunk));
        problem.initial = r.solution().clone();
        done_iters += chunk;
        let err = r.solution().convert::<f64>().diff_max(reference);
        for (k, &level) in LEVELS.iter().enumerate() {
            if reached[k].is_none() && err <= level {
                reached[k] = Some(done_iters);
            }
        }
        if reached.iter().all(Option::is_some) {
            break;
        }
    }
    reached
}

fn print_row(label: &str, reached: &[Option<usize>]) {
    print!("{label:<14}");
    for r in reached {
        match r {
            Some(k) => print!(" {k:>10}"),
            None => print!(" {:>10}", "never"),
        }
    }
    println!();
}

fn main() {
    println!("Iterations to reach a solution-error level (Laplace {N}x{N})");
    println!("error measured as max|u - reference| against a 1e-13-converged f64 solution\n");

    let reference = {
        let sp: StencilProblem<f64> = benchmark_problem(PdeKind::Laplace, N, 0).unwrap();
        solve(
            &sp,
            UpdateMethod::GaussSeidel,
            &StopCondition::tolerance(1e-13, 5_000_000),
        )
        .into_solution()
    };

    print!("{:<14}", "method");
    for l in LEVELS {
        print!(" {l:>10.0e}");
    }
    println!();
    for (label, method) in [
        ("Jacobi", UpdateMethod::Jacobi),
        ("Hybrid", UpdateMethod::Hybrid),
    ] {
        let f64_row = iterations_to_error_levels::<f64>(method, &reference);
        let f32_row = iterations_to_error_levels::<f32>(method, &reference);
        print_row(&format!("{label} f64"), &f64_row);
        print_row(&format!("{label} f32"), &f32_row);
        let penalties: Vec<String> = f64_row
            .iter()
            .zip(&f32_row)
            .map(|(a, b)| match (a, b) {
                (Some(a), Some(b)) => format!("{:.2}x", *b as f64 / *a as f64),
                (Some(_), None) => "inf".to_string(),
                _ => "-".to_string(),
            })
            .collect();
        println!(
            "{:<14} {}",
            format!("{label} penalty"),
            penalties.join("      ")
        );
        println!();
    }

    println!(
        "The paper's ~1.8x/~1.6x §7.2 penalties correspond to an accuracy target in the \
         band where f32 still converges but pays extra iterations; past its floor, f32 \
         never reaches the target (the hardware answer: loosen the tolerance, or iterate \
         in f32 and refine in software)."
    );
}
