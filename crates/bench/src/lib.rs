//! The FDMAX evaluation harness.
//!
//! This crate's binaries regenerate every table and figure of the paper's
//! evaluation (see `DESIGN.md` for the experiment index); this library
//! holds the shared machinery:
//!
//! * [`fdmax_run`] — analytic FDMAX metrics (time from the validated
//!   performance model, energy from the exact event-count model), used
//!   for grids too large to simulate point-by-point;
//! * [`IterationBudget`] — per-platform iteration counts, measured with
//!   the real `fdm` solvers at a feasible base size and extrapolated with
//!   the standard asymptotic laws;
//! * [`evaluate_point`] / [`EvalRow`] — one (PDE, grid size) benchmark
//!   point across all platforms, the row format of Fig. 7 and Fig. 8;
//! * [`geomean`] and small table-printing helpers.

use baselines::cpu::CpuModel;
use baselines::gpu::GpuModel;
use baselines::iterations::{
    extrapolate, measure_krylov_iterations, measure_relaxation_iterations, KrylovMethod, Precision,
    ScalingLaw,
};
use baselines::platform::{Platform, RunMetrics, WorkloadSpec};
use baselines::spmv_accel::SpmvAcceleratorModel;
use fdm::pde::PdeKind;
use fdm::solver::UpdateMethod;
use fdmax::accelerator::Accelerator;
use fdmax::config::FdmaxConfig;

pub mod microbench;

/// Default stop tolerance for the steady-state benchmarks (absolute
/// `||dU||_2` for relaxation, relative `||r||/||b||` for Krylov).
pub const EVAL_TOLERANCE: f64 = 1e-4;

/// Default number of time steps for Heat/Wave benchmarks.
pub const EVAL_STEPS: usize = 1_000;

/// Base grid size at which iteration counts are measured before
/// extrapolation.
pub const BASE_N: usize = 100;

/// Iteration cap for the measurement runs.
pub const MEASURE_CAP: usize = 2_000_000;

/// Computes FDMAX time/energy analytically for `iterations` iterations of
/// a `kind` benchmark on an `n x n` grid.
///
/// A thin wrapper over [`Accelerator::estimate`], which drives the
/// validated analytic model through the generic engine session: time from
/// the cycle-exact performance model, energy from the event-exact counter
/// model priced at the 32 nm per-op table plus the synthesized design's
/// background power (Table 3) over the run.
pub fn fdmax_run(config: &FdmaxConfig, kind: PdeKind, n: usize, iterations: u64) -> RunMetrics {
    let spec = WorkloadSpec::new(kind, n, iterations);
    let accel = Accelerator::new(*config).expect("benchmark configurations are valid");
    let report = accel.estimate(n, n, spec.offset_present(), spec.self_term(), iterations);
    RunMetrics {
        seconds: report.seconds(),
        energy_joules: report.total_energy_joules(),
        iterations,
    }
}

/// Per-platform iteration counts for one (PDE, size) benchmark point.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct IterationBudget {
    /// CPU-J / GPU-J: f64 Jacobi.
    pub jacobi_f64: u64,
    /// CPU-G: f64 Gauss-Seidel.
    pub gauss_seidel_f64: u64,
    /// GPU-C: f64 checkerboard.
    pub checkerboard_f64: u64,
    /// FDMAX-J: f32 Jacobi.
    pub jacobi_f32: u64,
    /// FDMAX-H: f32 Hybrid.
    pub hybrid_f32: u64,
    /// `MemAccel`: BiCG-STAB.
    pub bicgstab: u64,
    /// Alrescha: PCG.
    pub pcg: u64,
}

impl IterationBudget {
    /// Measures all counts at `base_n` and extrapolates to `n` with the
    /// appropriate law (`O(n²)` stationary, `O(n)` Krylov, fixed steps).
    ///
    /// # Panics
    ///
    /// Panics if `base_n < 3`.
    pub fn for_point(kind: PdeKind, n: usize, base_n: usize, steps: usize) -> Self {
        let measure_relax = |method: UpdateMethod, precision: Precision| {
            measure_relaxation_iterations(
                kind,
                base_n,
                steps,
                method,
                precision,
                EVAL_TOLERANCE,
                MEASURE_CAP,
            )
        };
        let law = if kind.is_steady_state() {
            ScalingLaw::Stationary
        } else {
            ScalingLaw::Fixed
        };
        let krylov_law = if kind.is_steady_state() {
            ScalingLaw::Krylov
        } else {
            ScalingLaw::Fixed
        };
        let ex = |count: u64| extrapolate(count, base_n, n, law);
        let exk = |count: u64| extrapolate(count, base_n, n, krylov_law);
        IterationBudget {
            jacobi_f64: ex(measure_relax(UpdateMethod::Jacobi, Precision::F64)),
            gauss_seidel_f64: ex(measure_relax(UpdateMethod::GaussSeidel, Precision::F64)),
            checkerboard_f64: ex(measure_relax(UpdateMethod::Checkerboard, Precision::F64)),
            jacobi_f32: ex(measure_relax(UpdateMethod::Jacobi, Precision::F32)),
            hybrid_f32: ex(measure_relax(UpdateMethod::Hybrid, Precision::F32)),
            bicgstab: exk(measure_krylov_iterations(
                kind,
                base_n,
                steps,
                KrylovMethod::BicgStab,
                EVAL_TOLERANCE,
                MEASURE_CAP,
            )),
            pcg: exk(measure_krylov_iterations(
                kind,
                base_n,
                steps,
                KrylovMethod::Pcg,
                EVAL_TOLERANCE,
                MEASURE_CAP,
            )),
        }
    }

    /// The §7.2 quantity: how many more iterations FDMAX-J runs than
    /// CPU-J due to f32 (paper: ~1.8x).
    pub fn f32_jacobi_penalty(&self) -> f64 {
        self.jacobi_f32 as f64 / self.jacobi_f64 as f64
    }
}

/// One platform's result at one benchmark point.
#[derive(Clone, Debug, PartialEq)]
pub struct EvalEntry {
    /// Platform name (`CPU-J`, `FDMAX-H`, …).
    pub platform: String,
    /// Modelled metrics.
    pub metrics: RunMetrics,
    /// Speedup over CPU-J (>1 = faster).
    pub speedup_over_cpu_j: f64,
    /// Energy normalized to CPU-J (<1 = more efficient).
    pub energy_vs_cpu_j: f64,
}

/// All platforms evaluated at one (PDE, grid size) point.
#[derive(Clone, Debug)]
pub struct EvalRow {
    /// The equation.
    pub kind: PdeKind,
    /// Grid edge length.
    pub n: usize,
    /// The iteration budget used.
    pub budget: IterationBudget,
    /// Per-platform entries, CPU-J first.
    pub entries: Vec<EvalEntry>,
}

impl EvalRow {
    /// Finds a platform's entry by name.
    pub fn entry(&self, platform: &str) -> Option<&EvalEntry> {
        self.entries.iter().find(|e| e.platform == platform)
    }
}

/// Evaluates every platform at one benchmark point (the unit of Fig. 7
/// and Fig. 8).
pub fn evaluate_point(
    config: &FdmaxConfig,
    kind: PdeKind,
    n: usize,
    budget: IterationBudget,
) -> EvalRow {
    let mut runs: Vec<(String, RunMetrics)> = Vec::new();

    let spec = |iters: u64| WorkloadSpec::new(kind, n, iters);
    let cpu_j = CpuModel::xeon_python('J');
    runs.push(("CPU-J".into(), cpu_j.run(&spec(budget.jacobi_f64))));
    let cpu_g = CpuModel::xeon_python('G');
    runs.push(("CPU-G".into(), cpu_g.run(&spec(budget.gauss_seidel_f64))));
    let gpu_j = GpuModel::rtx3090_jacobi();
    runs.push(("GPU-J".into(), gpu_j.run(&spec(budget.jacobi_f64))));
    let gpu_c = GpuModel::rtx3090_checkerboard();
    runs.push(("GPU-C".into(), gpu_c.run(&spec(budget.checkerboard_f64))));
    let memaccel = SpmvAcceleratorModel::memaccel();
    runs.push(("MemAccel".into(), memaccel.run(&spec(budget.bicgstab))));
    let alrescha = SpmvAcceleratorModel::alrescha();
    runs.push(("Alrescha".into(), alrescha.run(&spec(budget.pcg))));
    runs.push((
        "FDMAX-J".into(),
        fdmax_run(config, kind, n, budget.jacobi_f32),
    ));
    runs.push((
        "FDMAX-H".into(),
        fdmax_run(config, kind, n, budget.hybrid_f32),
    ));

    let base = runs[0].1;
    let entries = runs
        .into_iter()
        .map(|(platform, metrics)| EvalEntry {
            platform,
            speedup_over_cpu_j: metrics.speedup_over(&base),
            energy_vs_cpu_j: metrics.energy_fraction_of(&base),
            metrics,
        })
        .collect();
    EvalRow {
        kind,
        n,
        budget,
        entries,
    }
}

/// Extrapolates a per-method iteration count with a power law fitted to
/// two measurements: `i(n) = i_hi · (n / n_hi)^p` with
/// `p = ln(i_hi / i_lo) / ln(n_hi / n_lo)` clamped to `[0, 2]`.
///
/// This captures the *measured* growth of each method under the shared
/// stop condition instead of assuming textbook asymptotics.
pub fn fitted_extrapolate(lo: (usize, u64), hi: (usize, u64), n: usize) -> u64 {
    let (n_lo, i_lo) = lo;
    let (n_hi, i_hi) = hi;
    assert!(
        n_lo < n_hi && i_lo > 0 && i_hi > 0,
        "need two ordered measurements"
    );
    let p = ((i_hi as f64 / i_lo as f64).ln() / (n_hi as f64 / n_lo as f64).ln()).clamp(0.0, 2.0);
    ((i_hi as f64 * (n as f64 / n_hi as f64).powf(p)).round() as u64).max(1)
}

/// Second measurement size for the power-law fit.
pub const FIT_N: usize = 200;

/// Runs the full Fig. 7 / Fig. 8 evaluation: every benchmark PDE at every
/// grid size in `sizes`, against all eight platforms.
///
/// Iteration counts are measured with the real solvers at `base_n` and
/// [`FIT_N`]; larger sizes use the fitted per-method power law (steady
/// state only — Heat/Wave use fixed step counts everywhere).
pub fn full_evaluation(config: &FdmaxConfig, sizes: &[usize], base_n: usize) -> Vec<EvalRow> {
    let fit_n = FIT_N.max(base_n * 2);
    let mut rows = Vec::new();
    for kind in PdeKind::ALL {
        let lo = IterationBudget::for_point(kind, base_n, base_n, EVAL_STEPS);
        let hi = if kind.is_steady_state() {
            IterationBudget::for_point(kind, fit_n, fit_n, EVAL_STEPS)
        } else {
            lo
        };
        for &n in sizes {
            let budget = if !kind.is_steady_state() {
                lo
            } else if n <= fit_n {
                IterationBudget::for_point(kind, n, n, EVAL_STEPS)
            } else {
                let f = |sel: fn(&IterationBudget) -> u64| {
                    fitted_extrapolate((base_n, sel(&lo)), (fit_n, sel(&hi)), n)
                };
                IterationBudget {
                    jacobi_f64: f(|b| b.jacobi_f64),
                    gauss_seidel_f64: f(|b| b.gauss_seidel_f64),
                    checkerboard_f64: f(|b| b.checkerboard_f64),
                    jacobi_f32: f(|b| b.jacobi_f32),
                    hybrid_f32: f(|b| b.hybrid_f32),
                    bicgstab: f(|b| b.bicgstab),
                    pcg: f(|b| b.pcg),
                }
            };
            rows.push(evaluate_point(config, kind, n, budget));
        }
    }
    rows
}

/// Geometric mean of a nonempty slice.
///
/// # Panics
///
/// Panics on an empty slice or non-positive entries.
pub fn geomean(values: &[f64]) -> f64 {
    assert!(!values.is_empty(), "geomean of nothing");
    let log_sum: f64 = values
        .iter()
        .map(|&v| {
            assert!(v > 0.0, "geomean needs positive values, got {v}");
            v.ln()
        })
        .sum();
    (log_sum / values.len() as f64).exp()
}

/// Formats a ratio like the paper's figures (`1234x`, `4.9x`, `0.06%`).
pub fn fmt_ratio(r: f64) -> String {
    if r >= 100.0 {
        format!("{r:.0}x")
    } else if r >= 1.0 {
        format!("{r:.1}x")
    } else {
        format!("{:.2}%", r * 100.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geomean_basics() {
        assert!((geomean(&[4.0]) - 4.0).abs() < 1e-12);
        assert!((geomean(&[1.0, 100.0]) - 10.0).abs() < 1e-9);
        assert!((geomean(&[2.0, 2.0, 2.0]) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        let _ = geomean(&[1.0, 0.0]);
    }

    #[test]
    fn ratio_formatting() {
        assert_eq!(fmt_ratio(1234.4), "1234x");
        assert_eq!(fmt_ratio(4.94), "4.9x");
        assert_eq!(fmt_ratio(0.117), "11.70%");
    }

    #[test]
    fn fdmax_run_scales_with_iterations() {
        let cfg = FdmaxConfig::paper_default();
        let one = fdmax_run(&cfg, PdeKind::Laplace, 200, 10);
        let ten = fdmax_run(&cfg, PdeKind::Laplace, 200, 100);
        let ratio = ten.seconds / one.seconds;
        assert!(ratio > 9.0 && ratio < 10.5, "ratio {ratio}");
        assert!(ten.energy_joules > one.energy_joules * 8.0);
    }

    #[test]
    fn budget_measured_at_small_base_is_consistent() {
        // Use a small base for test speed.
        let b = IterationBudget::for_point(PdeKind::Laplace, 320, 32, EVAL_STEPS);
        assert!(b.gauss_seidel_f64 < b.jacobi_f64);
        assert!(b.hybrid_f32 <= b.jacobi_f32);
        assert!(b.pcg < b.jacobi_f64, "Krylov needs fewer iterations");
        assert!(b.f32_jacobi_penalty() >= 1.0);
        // Extrapolation: 10x the edge -> 100x stationary, 10x Krylov.
        let base = IterationBudget::for_point(PdeKind::Laplace, 32, 32, EVAL_STEPS);
        assert_eq!(b.jacobi_f64, base.jacobi_f64 * 100);
        assert_eq!(b.pcg, base.pcg * 10);
    }

    #[test]
    fn fixed_step_budget_for_time_stepped_kinds() {
        let b = IterationBudget::for_point(PdeKind::Heat, 10_000, 32, 77);
        assert_eq!(b.jacobi_f64, 77);
        assert_eq!(b.jacobi_f32, 77);
        assert_eq!(b.pcg, 77);
    }

    #[test]
    fn evaluate_point_produces_all_eight_platforms() {
        let cfg = FdmaxConfig::paper_default();
        let budget = IterationBudget::for_point(PdeKind::Heat, 100, 32, 50);
        let row = evaluate_point(&cfg, PdeKind::Heat, 100, budget);
        assert_eq!(row.entries.len(), 8);
        let cpu = row.entry("CPU-J").unwrap();
        assert!((cpu.speedup_over_cpu_j - 1.0).abs() < 1e-12);
        assert!((cpu.energy_vs_cpu_j - 1.0).abs() < 1e-12);
        let fdmax = row.entry("FDMAX-J").unwrap();
        assert!(
            fdmax.speedup_over_cpu_j > 100.0,
            "FDMAX should dominate the Python CPU, got {}",
            fdmax.speedup_over_cpu_j
        );
        assert!(fdmax.energy_vs_cpu_j < 0.01);
    }

    #[test]
    fn fitted_extrapolation_recovers_pure_power_laws() {
        // Quadratic law.
        assert_eq!(fitted_extrapolate((100, 100), (200, 400), 400), 1_600);
        // Linear law.
        assert_eq!(fitted_extrapolate((100, 50), (200, 100), 1_000), 500);
        // Flat law.
        assert_eq!(fitted_extrapolate((100, 70), (200, 70), 10_000), 70);
        // Superquadratic measurements clamp to quadratic.
        assert_eq!(fitted_extrapolate((100, 10), (200, 100), 400), 400);
        // Decreasing measurements clamp to flat.
        assert_eq!(fitted_extrapolate((100, 100), (200, 50), 400), 50);
    }

    #[test]
    fn fdmax_beats_gpu_on_small_heat_grids() {
        // The launch-overhead regime of Fig. 7.
        let cfg = FdmaxConfig::paper_default();
        let budget = IterationBudget::for_point(PdeKind::Heat, 100, 32, 100);
        let row = evaluate_point(&cfg, PdeKind::Heat, 100, budget);
        let gpu = row.entry("GPU-J").unwrap();
        let fdmax = row.entry("FDMAX-J").unwrap();
        assert!(fdmax.speedup_over_cpu_j > gpu.speedup_over_cpu_j);
    }
}
