//! A minimal wall-clock micro-benchmark harness.
//!
//! The workspace builds with no network access, so the Criterion harness
//! the benches previously used is not available. This module provides the
//! small subset the benches need — warmup, repeated timing, and a
//! ns-per-iteration report — with plain `std::time::Instant`. Benches stay
//! `harness = false` binaries; run them with `cargo bench` as before.

use std::hint::black_box;
use std::time::Instant;

/// Times `f` and prints a `name: time/iter` line like the standard
/// `libtest` bench output. Returns nanoseconds per iteration.
///
/// The harness runs a short warmup, then picks an iteration count that
/// makes the measured window at least ~20 ms to keep timer noise small.
pub fn bench(name: &str, mut f: impl FnMut()) -> f64 {
    // Warmup and calibration.
    let mut iters = 1u64;
    let per_iter_ns = loop {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        let dt = t0.elapsed().as_nanos() as f64;
        if dt >= 5e6 || iters >= 1 << 24 {
            break dt / iters as f64;
        }
        iters *= 4;
    };
    // Measured run: target ~20 ms.
    let target = (2e7 / per_iter_ns.max(1.0)).ceil().max(1.0) as u64;
    let t0 = Instant::now();
    for _ in 0..target {
        f();
    }
    let ns = t0.elapsed().as_nanos() as f64 / target as f64;
    println!("{name:<40} {ns:>12.1} ns/iter");
    ns
}

/// [`bench()`] variant that also reports element throughput.
pub fn bench_throughput(name: &str, elements: u64, mut f: impl FnMut()) -> f64 {
    let ns = bench(name, &mut f);
    let eps = elements as f64 / (ns * 1e-9);
    println!("{name:<40} {:>12.1} Melem/s", eps / 1e6);
    ns
}

/// Re-export so benches can `black_box` without the unstable test crate.
pub use std::hint::black_box as bb;

/// Keeps a value alive and opaque to the optimizer.
pub fn keep<T>(v: T) -> T {
    black_box(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_returns_positive_time() {
        let mut x = 0u64;
        let ns = bench("noop-ish", || {
            x = keep(x.wrapping_add(1));
        });
        assert!(ns > 0.0);
    }
}
