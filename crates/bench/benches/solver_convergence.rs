//! End-to-end software-solver benchmarks: wall time to a fixed tolerance
//! for each update method, and Krylov vs stationary.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::solver::krylov::{conjugate_gradient, preconditioned_cg};
use fdm::solver::{solve, UpdateMethod};
use fdm::sparse::StencilSystem;
use fdm::workload::benchmark_problem;

fn bench_relaxation_methods(c: &mut Criterion) {
    let sp = benchmark_problem::<f64>(PdeKind::Laplace, 64, 0).expect("valid benchmark");
    let stop = StopCondition::tolerance(1e-4, 200_000);
    let mut group = c.benchmark_group("laplace64_to_1e-4");
    group.sample_size(10);
    for method in [
        UpdateMethod::Jacobi,
        UpdateMethod::Hybrid,
        UpdateMethod::GaussSeidel,
        UpdateMethod::Checkerboard,
        UpdateMethod::Sor { omega: 1.7 },
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(method), &method, |b, &m| {
            b.iter(|| solve(&sp, m, &stop))
        });
    }
    group.finish();
}

fn bench_krylov(c: &mut Criterion) {
    let sp = benchmark_problem::<f64>(PdeKind::Poisson, 64, 0).expect("valid benchmark");
    let sys = StencilSystem::assemble(&sp);
    let mut group = c.benchmark_group("poisson64_krylov");
    group.sample_size(20);
    group.bench_function("cg", |b| {
        b.iter(|| conjugate_gradient(&sys.matrix, &sys.rhs, 1e-8, 10_000))
    });
    group.bench_function("pcg", |b| {
        b.iter(|| preconditioned_cg(&sys.matrix, &sys.rhs, 1e-8, 10_000))
    });
    group.finish();
}

criterion_group!(benches, bench_relaxation_methods, bench_krylov);
criterion_main!(benches);
