//! End-to-end software-solver benchmarks: wall time to a fixed tolerance
//! for each update method, and Krylov vs stationary.

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::solver::krylov::{conjugate_gradient, matrix_free_cg, preconditioned_cg};
use fdm::solver::{solve, UpdateMethod};
use fdm::sparse::StencilSystem;
use fdm::workload::benchmark_problem;
use fdmax_bench::microbench::{bench, keep};

fn bench_relaxation_methods() {
    let sp = benchmark_problem::<f64>(PdeKind::Laplace, 64, 0).expect("valid benchmark");
    let stop = StopCondition::tolerance(1e-4, 200_000);
    for method in [
        UpdateMethod::Jacobi,
        UpdateMethod::Hybrid,
        UpdateMethod::GaussSeidel,
        UpdateMethod::Checkerboard,
        UpdateMethod::Sor { omega: 1.7 },
    ] {
        bench(&format!("laplace64_to_1e-4/{method}"), || {
            keep(solve(&sp, method, &stop));
        });
    }
}

fn bench_krylov() {
    let sp = benchmark_problem::<f64>(PdeKind::Poisson, 64, 0).expect("valid benchmark");
    let sys = StencilSystem::assemble(&sp).unwrap();
    bench("poisson64_krylov/cg", || {
        let _ = keep(conjugate_gradient(&sys.matrix, &sys.rhs, 1e-8, 10_000));
    });
    bench("poisson64_krylov/pcg", || {
        let _ = keep(preconditioned_cg(&sys.matrix, &sys.rhs, 1e-8, 10_000));
    });
    bench("poisson64_krylov/matrix_free_cg", || {
        let _ = keep(matrix_free_cg(&sp, 1e-8, 10_000));
    });
}

fn main() {
    bench_relaxation_methods();
    bench_krylov();
}
