//! Host-side speed of the cycle-accurate simulator itself (how fast the
//! model runs, not how fast the modelled hardware is).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::sim::DetailedSim;

fn bench_sim_step(c: &mut Criterion) {
    let cfg = FdmaxConfig::paper_default();
    let mut group = c.benchmark_group("detailed_sim_step");
    for n in [32usize, 64, 128] {
        let sp = benchmark_problem::<f32>(PdeKind::Laplace, n, 1).expect("valid benchmark");
        group.throughput(Throughput::Elements(((n - 2) * (n - 2)) as u64));
        group.bench_with_input(BenchmarkId::from_parameter(n), &sp, |b, sp| {
            let mut sim = DetailedSim::new(cfg, sp, HwUpdateMethod::Jacobi).expect("valid");
            b.iter(|| sim.step())
        });
    }
    group.finish();
}

fn bench_elastic_configs(c: &mut Criterion) {
    let cfg = FdmaxConfig::paper_default();
    let sp = benchmark_problem::<f32>(PdeKind::Heat, 64, 1).expect("valid benchmark");
    let mut group = c.benchmark_group("sim_step_by_elastic");
    for e in ElasticConfig::options(&cfg) {
        group.bench_with_input(BenchmarkId::from_parameter(e), &e, |b, &e| {
            let mut sim =
                DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).expect("valid");
            b.iter(|| sim.step())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sim_step, bench_elastic_configs);
criterion_main!(benches);
