//! Host-side speed of the cycle-accurate simulator itself (how fast the
//! model runs, not how fast the modelled hardware is).

use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::sim::DetailedSim;
use fdmax_bench::microbench::{bench, bench_throughput};

fn bench_sim_step() {
    let cfg = FdmaxConfig::paper_default();
    for n in [32usize, 64, 128] {
        let sp = benchmark_problem::<f32>(PdeKind::Laplace, n, 1).expect("valid benchmark");
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).expect("valid");
        bench_throughput(
            &format!("detailed_sim_step/{n}"),
            ((n - 2) * (n - 2)) as u64,
            || {
                sim.step();
            },
        );
    }
}

fn bench_elastic_configs() {
    let cfg = FdmaxConfig::paper_default();
    let sp = benchmark_problem::<f32>(PdeKind::Heat, 64, 1).expect("valid benchmark");
    for e in ElasticConfig::options(&cfg) {
        let mut sim =
            DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).expect("valid");
        bench(&format!("sim_step_by_elastic/{e}"), || {
            sim.step();
        });
    }
}

fn main() {
    bench_sim_step();
    bench_elastic_configs();
}
