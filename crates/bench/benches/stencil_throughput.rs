//! Microbenchmarks of the numerics substrate: the canonical stencil
//! evaluation and the relaxation sweeps.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use fdm::grid::Grid2D;
use fdm::pde::OffsetField;
use fdm::solver::{sweep_checkerboard, sweep_gauss_seidel, sweep_hybrid, sweep_jacobi};
use fdm::stencil::{stencil_point, FivePointStencil};
use std::hint::black_box;

fn bench_stencil_point(c: &mut Criterion) {
    let s = FivePointStencil::new(0.25f32, 0.25, 0.1);
    c.bench_function("stencil_point_f32", |b| {
        b.iter(|| {
            stencil_point(
                black_box(&s),
                black_box(1.0),
                black_box(2.0),
                black_box(3.0),
                black_box(4.0),
                black_box(5.0),
                black_box(0.5),
            )
        })
    });
}

fn bench_sweeps(c: &mut Criterion) {
    let n = 256usize;
    let stencil = FivePointStencil::new(0.25f32, 0.25, 0.0);
    let cur = Grid2D::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 11) as f32 * 0.1);
    let mut group = c.benchmark_group("sweeps_256x256");
    group.throughput(Throughput::Elements(((n - 2) * (n - 2)) as u64));

    group.bench_function(BenchmarkId::from_parameter("jacobi"), |b| {
        let mut next = cur.clone();
        b.iter(|| sweep_jacobi(&stencil, &OffsetField::None, &cur, None, &mut next))
    });
    group.bench_function(BenchmarkId::from_parameter("hybrid"), |b| {
        let mut next = cur.clone();
        b.iter(|| sweep_hybrid(&stencil, &OffsetField::None, &cur, None, &mut next))
    });
    group.bench_function(BenchmarkId::from_parameter("gauss_seidel"), |b| {
        let mut field = cur.clone();
        b.iter(|| sweep_gauss_seidel(&stencil, &OffsetField::None, &mut field, None))
    });
    group.bench_function(BenchmarkId::from_parameter("checkerboard"), |b| {
        let mut field = cur.clone();
        b.iter(|| sweep_checkerboard(&stencil, &OffsetField::None, &mut field, None))
    });
    group.finish();
}

criterion_group!(benches, bench_stencil_point, bench_sweeps);
criterion_main!(benches);
