//! Microbenchmarks of the numerics substrate: the canonical stencil
//! evaluation and the relaxation sweeps.

use fdm::grid::Grid2D;
use fdm::pde::OffsetField;
use fdm::solver::{sweep_checkerboard, sweep_gauss_seidel, sweep_hybrid, sweep_jacobi};
use fdm::stencil::{stencil_point, FivePointStencil};
use fdmax_bench::microbench::{bench, bench_throughput, keep};
use std::hint::black_box;

fn bench_stencil_point() {
    let s = FivePointStencil::new(0.25f32, 0.25, 0.1);
    bench("stencil_point_f32", || {
        keep(stencil_point(
            black_box(&s),
            black_box(1.0),
            black_box(2.0),
            black_box(3.0),
            black_box(4.0),
            black_box(5.0),
            black_box(0.5),
        ));
    });
}

fn bench_sweeps() {
    let n = 256usize;
    let elements = ((n - 2) * (n - 2)) as u64;
    let stencil = FivePointStencil::new(0.25f32, 0.25, 0.0);
    let cur = Grid2D::from_fn(n, n, |i, j| ((i * 7 + j * 13) % 11) as f32 * 0.1);

    let mut next = cur.clone();
    bench_throughput("sweeps_256x256/jacobi", elements, || {
        keep(sweep_jacobi(
            &stencil,
            &OffsetField::None,
            &cur,
            None,
            &mut next,
        ));
    });
    let mut next = cur.clone();
    bench_throughput("sweeps_256x256/hybrid", elements, || {
        keep(sweep_hybrid(
            &stencil,
            &OffsetField::None,
            &cur,
            None,
            &mut next,
        ));
    });
    let mut field = cur.clone();
    bench_throughput("sweeps_256x256/gauss_seidel", elements, || {
        keep(sweep_gauss_seidel(
            &stencil,
            &OffsetField::None,
            &mut field,
            None,
        ));
    });
    let mut field = cur.clone();
    bench_throughput("sweeps_256x256/checkerboard", elements, || {
        keep(sweep_checkerboard(
            &stencil,
            &OffsetField::None,
            &mut field,
            None,
        ));
    });
}

fn main() {
    bench_stencil_point();
    bench_sweeps();
}
