//! Report rendering: rustc-style text and machine-readable JSON.

use fdmax::lint::{Diagnostic, LintReport, Severity};
use std::fmt::Write as _;

/// Renders one report as a rustc-style text block, one paragraph per
/// diagnostic:
///
/// ```text
/// error[FDX003]: row block exceeds sub-FIFO depth
///   --> configs/bad.toml
///    = note: row block of 80 output rows exceeds the 64-entry sub-FIFO ...
///    = help: split the strip into blocks of at most 64 rows ...
/// ```
pub fn render_text(origin: &str, report: &LintReport) -> String {
    let mut out = String::new();
    if report.is_clean() {
        let _ = writeln!(out, "{origin}: lint clean");
        return out;
    }
    for d in report.diagnostics() {
        let _ = writeln!(out, "{}[{}]: {}", d.severity(), d.code, d.code.title());
        let _ = writeln!(out, "  --> {origin} ({})", d.field);
        let _ = writeln!(out, "   = note: {}", d.message);
        if let Some(help) = &d.suggestion {
            let _ = writeln!(out, "   = help: {help}");
        }
    }
    let errors = report.errors().count();
    let warns = report
        .diagnostics()
        .iter()
        .filter(|d| d.severity() == Severity::Warn)
        .count();
    let _ = writeln!(
        out,
        "{origin}: {} diagnostic(s), {errors} error(s), {warns} warning(s)",
        report.len()
    );
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_diag(d: &Diagnostic) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\"code\":\"{}\",\"severity\":\"{}\",\"title\":\"{}\",\"field\":\"{}\",\"message\":\"{}\"",
        d.code,
        d.severity(),
        json_escape(d.code.title()),
        json_escape(d.field),
        json_escape(&d.message)
    );
    if let Some(help) = &d.suggestion {
        let _ = write!(out, ",\"suggestion\":\"{}\"", json_escape(help));
    }
    out.push('}');
    out
}

/// Renders one report as a single JSON object (stable schema for CI):
/// `{"file": ..., "clean": bool, "worst": "error"|"warning"|"info"|null,
/// "diagnostics": [{code, severity, title, field, message, suggestion?}]}`.
pub fn render_json(origin: &str, report: &LintReport) -> String {
    let worst = match report.worst() {
        Some(s) => format!("\"{s}\""),
        None => "null".to_string(),
    };
    let diags: Vec<String> = report.diagnostics().iter().map(json_diag).collect();
    format!(
        "{{\"file\":\"{}\",\"clean\":{},\"errors\":{},\"worst\":{},\"diagnostics\":[{}]}}",
        json_escape(origin),
        report.is_clean(),
        report.errors().count(),
        worst,
        diags.join(",")
    )
}

fn sarif_level(severity: Severity) -> &'static str {
    match severity {
        Severity::Error => "error",
        Severity::Warn => "warning",
        Severity::Info => "note",
    }
}

/// Renders reports from one run as a SARIF 2.1.0 log (the schema CI
/// annotation uploaders consume). One `run` holds every linted file:
/// the tool's rule table lists all stable codes with their shared
/// explanations, and each diagnostic becomes a `result` pointing at its
/// origin file. The output is deterministic — byte-identical across
/// runs on the same input — so golden-file tests can compare it
/// verbatim.
pub fn render_sarif(reports: &[(String, LintReport)]) -> String {
    let mut out = String::new();
    out.push_str("{\"version\":\"2.1.0\",");
    out.push_str("\"$schema\":\"https://json.schemastore.org/sarif-2.1.0.json\",\"runs\":[{");
    out.push_str("\"tool\":{\"driver\":{\"name\":\"fdmax-lint\",\"rules\":[");
    for (i, code) in fdmax::lint::ALL_CODES.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"id\":\"{}\",\"shortDescription\":{{\"text\":\"{}\"}},\
             \"fullDescription\":{{\"text\":\"{}\"}}}}",
            code,
            json_escape(code.title()),
            json_escape(code.explanation().trim()),
        );
    }
    out.push_str("]}},\"results\":[");
    let mut first = true;
    for (origin, report) in reports {
        for d in report.diagnostics() {
            if !first {
                out.push(',');
            }
            first = false;
            let mut text = d.message.clone();
            if let Some(help) = &d.suggestion {
                text.push_str("; help: ");
                text.push_str(help);
            }
            let _ = write!(
                out,
                "{{\"ruleId\":\"{}\",\"level\":\"{}\",\
                 \"message\":{{\"text\":\"{}\"}},\
                 \"locations\":[{{\"physicalLocation\":{{\"artifactLocation\":\
                 {{\"uri\":\"{}\"}}}},\"logicalLocations\":[{{\"name\":\"{}\"}}]}}]}}",
                d.code,
                sarif_level(d.severity()),
                json_escape(&text),
                json_escape(origin),
                json_escape(d.field),
            );
        }
    }
    out.push_str("]}]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fdmax::accelerator::HwUpdateMethod;
    use fdmax::config::FdmaxConfig;
    use fdmax::lint::{lint, LintTarget};

    fn faulty_report() -> LintReport {
        let mut cfg = FdmaxConfig::paper_default();
        cfg.fifo_depth = 0;
        lint(&LintTarget::planned(cfg, 24, 24, HwUpdateMethod::Jacobi))
    }

    #[test]
    fn text_report_is_rustc_shaped() {
        let text = render_text("demo.toml", &faulty_report());
        assert!(text.contains("error[FDX001]"));
        assert!(text.contains("--> demo.toml"));
        assert!(text.contains("= note:"));
        assert!(text.contains("= help:"));
        assert!(text.contains("1 error(s)"));
    }

    #[test]
    fn clean_report_renders_clean() {
        let text = render_text("ok.toml", &LintReport::new());
        assert_eq!(text, "ok.toml: lint clean\n");
        let json = render_json("ok.toml", &LintReport::new());
        assert!(json.contains("\"clean\":true"));
        assert!(json.contains("\"worst\":null"));
        assert!(json.contains("\"diagnostics\":[]"));
    }

    #[test]
    fn json_report_has_the_stable_schema() {
        let json = render_json("demo.toml", &faulty_report());
        assert!(json.contains("\"file\":\"demo.toml\""));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"worst\":\"error\""));
        assert!(json.contains("\"code\":\"FDX001\""));
        assert!(json.contains("\"severity\":\"error\""));
        assert!(json.contains("\"field\":\"fifo_depth\""));
        assert!(json.contains("\"suggestion\""));
    }

    #[test]
    fn json_escaping_handles_specials() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(json_escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn sarif_log_has_rules_and_results() {
        let sarif = render_sarif(&[("demo.toml".to_string(), faulty_report())]);
        assert!(sarif.contains("\"version\":\"2.1.0\""));
        assert!(sarif.contains("\"name\":\"fdmax-lint\""));
        // Every stable code appears in the rule table.
        for code in fdmax::lint::ALL_CODES {
            assert!(sarif.contains(&format!("\"id\":\"{code}\"")), "{code}");
        }
        assert!(sarif.contains("\"ruleId\":\"FDX001\""));
        assert!(sarif.contains("\"level\":\"error\""));
        assert!(sarif.contains("\"uri\":\"demo.toml\""));
    }

    #[test]
    fn sarif_with_no_findings_is_an_empty_result_set() {
        let sarif = render_sarif(&[("ok.toml".to_string(), LintReport::new())]);
        assert!(sarif.contains("\"results\":[]"));
    }
}
