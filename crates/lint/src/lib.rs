//! `fdmax-lint` — the config-file front end of the elaboration-time
//! static analyzer in [`fdmax::lint`].
//!
//! The analysis itself lives in the core crate (so the `Accelerator`/
//! `DetailedSim` constructors can gate on it); this crate adds what a
//! standalone lint tool needs:
//!
//! * [`configfile`] — a dependency-free parser for the workspace's
//!   `key = value` configuration files (a strict TOML subset);
//! * [`render`] — rustc-style text reports, machine-readable JSON
//!   (`fdmax-lint --format json` for CI) and SARIF 2.1.0 logs
//!   (`--format sarif` for CI annotation uploaders);
//! * the `fdmax-lint` binary tying both together, with `--explain
//!   FDX0xx` printing the per-code documentation shared with the
//!   rustdoc comments.
//!
//! ```text
//! $ fdmax-lint examples/configs/paper_default.toml
//! warning[FDX005]: SRAM banks oversubscribed by concurrent PE accesses
//!   --> examples/configs/paper_default.toml
//!    = note: full batches issue 64 concurrent accesses against 32 ...
//!    = help: provision 64 banks, or accept the 2.00x stall
//! ```

pub mod configfile;
pub mod render;

pub use fdmax::analysis::{
    analyze_plan, certify_band_plan, AnalysisReport, BandPlan, PrecisionClass, RungBudget,
    SolvePlan,
};
pub use fdmax::lint::{
    lint, lint_config, lint_frontend, lint_full, lint_journal_collisions, lint_plan, lint_service,
    lint_service_fleet, DiagCode, Diagnostic, FrontendSpec, LintReport, LintTarget, PlanSpec,
    ServiceSpec, Severity, ALL_CODES,
};
