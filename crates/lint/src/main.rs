//! `fdmax-lint` — lint FDMAX configuration files before touching silicon
//! (or the cycle-accurate simulator).
//!
//! ```text
//! fdmax-lint [--format text|json|sarif] [--deny-warnings] <config.toml>...
//! fdmax-lint --explain FDX0xx
//! ```
//!
//! Exit status: 0 when every file is free of Error-level diagnostics
//! (and, under `--deny-warnings`, free of warnings too), 1 when any
//! file has them, 2 on unreadable or unparseable input.

use fdmax_lint::configfile;
use fdmax_lint::render::{render_json, render_sarif, render_text};
use fdmax_lint::{DiagCode, LintReport, Severity};
use std::process::ExitCode;

const USAGE: &str = "usage: fdmax-lint [options] <config.toml>...
       fdmax-lint --explain FDX0xx

Lints FDMAX accelerator configuration files with the elaboration-time
static analyzer (diagnostic codes FDX001..FDX022). Files that size the
solve service (queue_capacity / max_job_iterations /
deadline_iterations / checkpoint_every / journal_dir) get the
service-overcommit (FDX011) and durability (FDX013) checks too; files
that size the multi-tenant front end (workers /
tenant_in_flight_quotas / hedge / entry_rung) get the quota-overcommit
(FDX020) and vacuous-hedge (FDX021) checks; files that describe a job
class (tolerance / precision / pde / job_iterations / parallel_threads
/ scale / tile_depth) get the solve-plan analysis (FDX015..FDX019) and
the tiling-geometry check (FDX022); when several
files are linted together, services sharing a journal_dir are reported
once under a combined `<fleet>` origin.

options:
  --format <fmt>   output format: text (default), json (one JSON object
                   per file, stable schema for CI), sarif (one SARIF
                   2.1.0 log for the whole run)
  --json           alias of --format json
  --deny-warnings  treat Warn-level diagnostics as failures
  --explain <code> print the documentation of one diagnostic code
  --help           this message";

#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
    Sarif,
}

fn explain(code_str: &str) -> ExitCode {
    let Some(code) = DiagCode::parse(code_str) else {
        eprintln!(
            "fdmax-lint: unknown code `{code_str}` (valid: FDX001..FDX{:03})",
            fdmax::lint::ALL_CODES.len()
        );
        return ExitCode::from(2);
    };
    println!("{}[{code}]: {}", code.severity(), code.title());
    println!();
    for line in code.explanation().lines() {
        println!("  {}", line.trim());
    }
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let mut format = Format::Text;
    let mut deny_warnings = false;
    let mut files: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--json" => format = Format::Json,
            "--format" => {
                format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    Some("sarif") => Format::Sarif,
                    other => {
                        eprintln!(
                            "fdmax-lint: --format expects text, json or sarif, got `{}`",
                            other.unwrap_or("nothing")
                        );
                        return ExitCode::from(2);
                    }
                }
            }
            "--explain" => {
                let Some(code) = args.next() else {
                    eprintln!("fdmax-lint: --explain expects a diagnostic code\n{USAGE}");
                    return ExitCode::from(2);
                };
                return explain(&code);
            }
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fdmax-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("fdmax-lint: no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    let fail_at = if deny_warnings {
        Severity::Warn
    } else {
        Severity::Error
    };
    let mut failed = false;
    let mut broken = false;
    let mut fleet: Vec<(String, fdmax_lint::ServiceSpec)> = Vec::new();
    let mut rendered: Vec<(String, LintReport)> = Vec::new();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fdmax-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        let parsed = match configfile::parse_full(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fdmax-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        let report = fdmax_lint::lint_full(
            &parsed.target,
            parsed.service.as_ref(),
            parsed.frontend.as_ref(),
            parsed.plan.as_ref(),
        );
        if report.worst().is_some_and(|w| w >= fail_at) {
            failed = true;
        }
        match format {
            Format::Json => println!("{}", render_json(file, &report)),
            Format::Text => print!("{}", render_text(file, &report)),
            Format::Sarif => rendered.push((file.clone(), report)),
        }
        if let Some(spec) = parsed.service {
            fleet.push((file.clone(), spec));
        }
    }
    // Cross-file check: services sharing a journal_dir corrupt each
    // other's recovery (FDX013 Error). Per-file diagnostics were
    // already printed above, so only the collisions are reported here.
    let specs: Vec<_> = fleet.iter().map(|(_, s)| s.clone()).collect();
    let collisions = fdmax_lint::lint_journal_collisions(&specs);
    if !collisions.is_empty() {
        let origin = fleet
            .iter()
            .filter(|(_, s)| s.journal_dir.is_some())
            .map(|(f, _)| f.as_str())
            .collect::<Vec<_>>()
            .join(" + ");
        let origin = format!("<fleet: {origin}>");
        if collisions.worst().is_some_and(|w| w >= fail_at) {
            failed = true;
        }
        match format {
            Format::Json => println!("{}", render_json(&origin, &collisions)),
            Format::Text => print!("{}", render_text(&origin, &collisions)),
            Format::Sarif => rendered.push((origin, collisions)),
        }
    }
    if format == Format::Sarif {
        println!("{}", render_sarif(&rendered));
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
