//! `fdmax-lint` — lint FDMAX configuration files before touching silicon
//! (or the cycle-accurate simulator).
//!
//! ```text
//! fdmax-lint [--json] [--deny-warnings] <config.toml>...
//! ```
//!
//! Exit status: 0 when every file is free of Error-level diagnostics
//! (and, under `--deny-warnings`, free of warnings too), 1 when any
//! file has them, 2 on unreadable or unparseable input.

use fdmax_lint::configfile;
use fdmax_lint::render::{render_json, render_text};
use fdmax_lint::Severity;
use std::process::ExitCode;

const USAGE: &str = "usage: fdmax-lint [--json] [--deny-warnings] <config.toml>...

Lints FDMAX accelerator configuration files with the elaboration-time
static analyzer (diagnostic codes FDX001..FDX013). Files that size the
solve service (queue_capacity / max_job_iterations /
deadline_iterations / checkpoint_every / journal_dir) get the
service-overcommit (FDX011) and durability (FDX013) checks too; when
several files are linted together, services sharing a journal_dir are
reported once under a combined `<fleet>` origin.

options:
  --json           one JSON object per file (stable schema for CI)
  --deny-warnings  treat Warn-level diagnostics as failures
  --help           this message";

fn main() -> ExitCode {
    let mut json = false;
    let mut deny_warnings = false;
    let mut files: Vec<String> = Vec::new();
    for arg in std::env::args().skip(1) {
        match arg.as_str() {
            "--json" => json = true,
            "--deny-warnings" => deny_warnings = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            other if other.starts_with('-') => {
                eprintln!("fdmax-lint: unknown option `{other}`\n{USAGE}");
                return ExitCode::from(2);
            }
            file => files.push(file.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("fdmax-lint: no input files\n{USAGE}");
        return ExitCode::from(2);
    }

    let fail_at = if deny_warnings {
        Severity::Warn
    } else {
        Severity::Error
    };
    let mut failed = false;
    let mut broken = false;
    let mut fleet: Vec<(String, fdmax_lint::ServiceSpec)> = Vec::new();
    for file in &files {
        let source = match std::fs::read_to_string(file) {
            Ok(s) => s,
            Err(e) => {
                eprintln!("fdmax-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        let parsed = match configfile::parse_full(&source) {
            Ok(p) => p,
            Err(e) => {
                eprintln!("fdmax-lint: {file}: {e}");
                broken = true;
                continue;
            }
        };
        let report = fdmax_lint::lint_full(&parsed.target, parsed.service.as_ref());
        if report.worst().is_some_and(|w| w >= fail_at) {
            failed = true;
        }
        if json {
            println!("{}", render_json(file, &report));
        } else {
            print!("{}", render_text(file, &report));
        }
        if let Some(spec) = parsed.service {
            fleet.push((file.clone(), spec));
        }
    }
    // Cross-file check: services sharing a journal_dir corrupt each
    // other's recovery (FDX013 Error). Per-file diagnostics were
    // already printed above, so only the collisions are reported here.
    let specs: Vec<_> = fleet.iter().map(|(_, s)| s.clone()).collect();
    let collisions = fdmax_lint::lint_journal_collisions(&specs);
    if !collisions.is_empty() {
        let origin = fleet
            .iter()
            .filter(|(_, s)| s.journal_dir.is_some())
            .map(|(f, _)| f.as_str())
            .collect::<Vec<_>>()
            .join(" + ");
        let origin = format!("<fleet: {origin}>");
        if collisions.worst().is_some_and(|w| w >= fail_at) {
            failed = true;
        }
        if json {
            println!("{}", render_json(&origin, &collisions));
        } else {
            print!("{}", render_text(&origin, &collisions));
        }
    }
    if broken {
        ExitCode::from(2)
    } else if failed {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
