//! A dependency-free parser for FDMAX configuration files.
//!
//! The format is a strict subset of TOML: one `key = value` pair per
//! line, `#` comments, optional `[section]` headers (accepted and
//! ignored, so files organized as `[accelerator]` / `[deployment]`
//! sections parse the same). Recognized keys:
//!
//! | key            | meaning                               | default |
//! |----------------|---------------------------------------|---------|
//! | `pe_rows`      | physical PE-array rows                | 8       |
//! | `pe_cols`      | physical PE-array columns             | 8       |
//! | `fifo_depth`   | entries per physical nFIFO/pFIFO      | 64      |
//! | `buffer_banks` | banks per on-chip buffer              | 32      |
//! | `buffer_depth` | elements per bank                     | 32      |
//! | `clock_mhz`    | clock frequency, MHz                  | 200     |
//! | `dram_gb_s`    | DRAM bandwidth, GB/s                  | 128     |
//! | `grid_rows`    | deployment grid rows                  | 1000    |
//! | `grid_cols`    | deployment grid columns               | 1000    |
//! | `method`       | `"jacobi"`/`"hybrid"` (or `"J"`/`"H"`)| jacobi  |
//! | `subarrays`    | explicit elastic: chain count         | planner |
//! | `width`        | explicit elastic: PEs per chain       | planner |
//!
//! `subarrays` and `width` must appear together (or not at all); without
//! them the planner picks the cycle-minimizing decomposition, exactly as
//! the accelerator constructors do.
//!
//! Files may additionally size the solve service in front of the
//! accelerator (any one key activates the service lint, FDX011; the
//! others fall back to the [`fdmax::ServiceConfig`] defaults):
//!
//! | key                   | meaning                           | default |
//! |-----------------------|-----------------------------------|---------|
//! | `queue_capacity`      | bounded admission-queue depth     | 16      |
//! | `max_job_iterations`  | per-job iteration cap             | 1000    |
//! | `deadline_iterations` | per-job deadline budget           | 20000   |
//! | `checkpoint_every`    | durability checkpoint cadence     | off     |
//! | `journal_dir`         | write-ahead journal directory     | off     |
//!
//! The durability keys feed the FDX013 lint: a `checkpoint_every` at or
//! beyond `deadline_iterations` warns (no job can ever reach its first
//! checkpoint), and two config files naming the same `journal_dir` is
//! an Error when linted together (their journals corrupt each other's
//! recovery).
//!
//! Files fronted by the multi-tenant worker pool may size it too (any
//! one key activates the frontend lints, FDX020/FDX021):
//!
//! | key                       | meaning                              | default  |
//! |---------------------------|--------------------------------------|----------|
//! | `workers`                 | worker-pool size                     | 1        |
//! | `tenant_in_flight_quotas` | quoted CSV of per-tenant quotas      | none     |
//! | `hedge`                   | `true`/`false`: hedged retries armed | false    |
//! | `entry_rung`              | deepest entry rung jobs may get      | detailed |
//!
//! `tenant_in_flight_quotas` is a quoted comma-separated list (the
//! parser has no array syntax), e.g. `"2, 2, 1"`; `entry_rung` is one
//! of `"detailed"`, `"reference"`, `"parallel"`, `"tiled"`,
//! `"software"`, `"krylov"`, `"estimate"`. Quotas summing past
//! `workers` warn (FDX020); `hedge = true` with an entry rung at or
//! past `krylov` warns (FDX021, the hedge can never launch).
//!
//! Finally, files may describe the concrete job class the deployment
//! will run, activating the solve-plan analysis (FDX015–FDX019; any one
//! key activates it, the others default):
//!
//! | key                | meaning                                  | default |
//! |--------------------|------------------------------------------|---------|
//! | `tolerance`        | convergence threshold (omit: fixed-step) | off     |
//! | `precision`        | `"f16"`/`"f32"`/`"f64"`                  | f32     |
//! | `pde`              | `"laplace"`/`"poisson"`/`"heat"`/`"wave"`| laplace |
//! | `job_iterations`   | per-job iteration cap / step count       | 1000    |
//! | `parallel_threads` | strip-parallel rung worker count         | 4       |
//! | `scale`            | data magnitude (largest boundary value)  | 1.0     |
//! | `tile_depth`       | fused sweeps per tiled-rung cache pass   | 1 (off) |
//!
//! A `tile_depth` above 1 arms the temporal-tiling geometry lint
//! (FDX022): a halo deep enough to consume the interior is an Error,
//! and a depth that collapses the strip decomposition or exceeds the
//! per-job iteration cap warns.

use core::fmt;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::analysis::{PrecisionClass, SolvePlan};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::lint::{FrontendSpec, LintTarget, ServiceSpec};

/// Everything a configuration file describes: the accelerator
/// deployment and, when any service key is present, the solve-service
/// sizing in front of it.
#[derive(Clone, Debug, PartialEq)]
pub struct ParsedConfig {
    /// The accelerator deployment the analyzer verifies.
    pub target: LintTarget,
    /// The service sizing, when the file gives one.
    pub service: Option<ServiceSpec>,
    /// The multi-tenant front-end sizing, when the file gives one.
    pub frontend: Option<FrontendSpec>,
    /// The job class for the solve-plan analysis, when the file gives
    /// one.
    pub plan: Option<SolvePlan>,
}

/// A parse failure, with the 1-based line it happened on (0 for
/// file-level problems such as a lone `subarrays`).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based source line, 0 when no single line is at fault.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "{}", self.message)
        } else {
            write!(f, "line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for ParseError {}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_usize(line: usize, key: &str, value: &str) -> Result<usize, ParseError> {
    value.parse::<usize>().map_err(|_| {
        err(
            line,
            format!("{key} expects a non-negative integer, got `{value}`"),
        )
    })
}

fn parse_f64(line: usize, key: &str, value: &str) -> Result<f64, ParseError> {
    let v = value
        .parse::<f64>()
        .map_err(|_| err(line, format!("{key} expects a number, got `{value}`")))?;
    if !v.is_finite() || v <= 0.0 {
        return Err(err(line, format!("{key} must be positive and finite")));
    }
    Ok(v)
}

fn unquote(value: &str) -> &str {
    let v = value.trim();
    v.strip_prefix('"')
        .and_then(|rest| rest.strip_suffix('"'))
        .unwrap_or(v)
}

/// Parses a configuration file's contents into a lint target, dropping
/// any service sizing. Prefer [`parse_full`] when the service lint
/// (FDX011) should run too.
///
/// # Errors
///
/// Returns [`ParseError`] (with the offending line) for malformed lines,
/// unknown keys, bad values, or a `subarrays`/`width` pair with one half
/// missing.
pub fn parse(source: &str) -> Result<LintTarget, ParseError> {
    parse_full(source).map(|p| p.target)
}

/// Parses a configuration file's contents, including the optional
/// solve-service sizing.
///
/// # Errors
///
/// Returns [`ParseError`] (with the offending line) for malformed lines,
/// unknown keys, bad values, or a `subarrays`/`width` pair with one half
/// missing.
pub fn parse_full(source: &str) -> Result<ParsedConfig, ParseError> {
    let mut config = FdmaxConfig::paper_default();
    let mut rows = 1000usize;
    let mut cols = 1000usize;
    let mut method = HwUpdateMethod::Jacobi;
    let mut subarrays: Option<usize> = None;
    let mut width: Option<usize> = None;
    let mut queue_capacity: Option<usize> = None;
    let mut max_job_iterations: Option<usize> = None;
    let mut deadline_iterations: Option<u64> = None;
    let mut checkpoint_every: Option<u64> = None;
    let mut journal_dir: Option<String> = None;
    let mut workers: Option<usize> = None;
    let mut tenant_quotas: Option<Vec<usize>> = None;
    let mut hedge: Option<bool> = None;
    let mut entry_rung: Option<usize> = None;
    let mut tolerance: Option<f64> = None;
    let mut precision: Option<PrecisionClass> = None;
    let mut steady_state: Option<bool> = None;
    let mut job_iterations: Option<usize> = None;
    let mut parallel_threads: Option<usize> = None;
    let mut scale: Option<f64> = None;
    let mut tile_depth: Option<usize> = None;

    for (idx, raw) in source.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        if line.starts_with('[') {
            if line.ends_with(']') {
                continue; // section headers are organizational only
            }
            return Err(err(lineno, "unterminated section header"));
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(err(lineno, format!("expected `key = value`, got `{line}`")));
        };
        let key = key.trim();
        let value = value.trim();
        if value.is_empty() {
            return Err(err(lineno, format!("{key} has no value")));
        }
        match key {
            "pe_rows" => config.pe_rows = parse_usize(lineno, key, value)?,
            "pe_cols" => config.pe_cols = parse_usize(lineno, key, value)?,
            "fifo_depth" => config.fifo_depth = parse_usize(lineno, key, value)?,
            "buffer_banks" => config.buffer_banks = parse_usize(lineno, key, value)?,
            "buffer_depth" => config.buffer_depth = parse_usize(lineno, key, value)?,
            "clock_mhz" => config.clock_hz = parse_f64(lineno, key, value)? * 1e6,
            "dram_gb_s" => config.dram_gb_s = parse_f64(lineno, key, value)?,
            "grid_rows" => rows = parse_usize(lineno, key, value)?,
            "grid_cols" => cols = parse_usize(lineno, key, value)?,
            "subarrays" => subarrays = Some(parse_usize(lineno, key, value)?),
            "width" => width = Some(parse_usize(lineno, key, value)?),
            "queue_capacity" => queue_capacity = Some(parse_usize(lineno, key, value)?),
            "max_job_iterations" => max_job_iterations = Some(parse_usize(lineno, key, value)?),
            "deadline_iterations" => {
                deadline_iterations = Some(parse_usize(lineno, key, value)? as u64);
            }
            "checkpoint_every" => {
                checkpoint_every = Some(parse_usize(lineno, key, value)? as u64);
            }
            "journal_dir" => journal_dir = Some(unquote(value).to_string()),
            "workers" => workers = Some(parse_usize(lineno, key, value)?),
            "tenant_in_flight_quotas" => {
                let mut quotas = Vec::new();
                for part in unquote(value).split(',') {
                    let part = part.trim();
                    if part.is_empty() {
                        continue;
                    }
                    quotas.push(parse_usize(lineno, key, part)?);
                }
                tenant_quotas = Some(quotas);
            }
            "hedge" => {
                hedge = match unquote(value).to_ascii_lowercase().as_str() {
                    "true" => Some(true),
                    "false" => Some(false),
                    other => {
                        return Err(err(
                            lineno,
                            format!("hedge must be true or false, got `{other}`"),
                        ))
                    }
                }
            }
            "entry_rung" => {
                entry_rung = match unquote(value).to_ascii_lowercase().as_str() {
                    "detailed" => Some(0),
                    "reference" => Some(1),
                    "parallel" => Some(2),
                    "tiled" => Some(3),
                    "software" => Some(4),
                    "krylov" => Some(5),
                    "estimate" => Some(6),
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "entry_rung must be \"detailed\", \"reference\", \
                                 \"parallel\", \"tiled\", \"software\", \"krylov\" \
                                 or \"estimate\", got `{other}`"
                            ),
                        ))
                    }
                }
            }
            "tolerance" => tolerance = Some(parse_f64(lineno, key, value)?),
            "scale" => scale = Some(parse_f64(lineno, key, value)?),
            "job_iterations" => job_iterations = Some(parse_usize(lineno, key, value)?),
            "parallel_threads" => parallel_threads = Some(parse_usize(lineno, key, value)?),
            "tile_depth" => tile_depth = Some(parse_usize(lineno, key, value)?),
            "precision" => {
                precision = match PrecisionClass::parse(&unquote(value).to_ascii_lowercase()) {
                    Some(p) => Some(p),
                    None => {
                        return Err(err(
                            lineno,
                            format!("precision must be \"f16\", \"f32\" or \"f64\", got `{value}`"),
                        ))
                    }
                }
            }
            "pde" => {
                steady_state = match unquote(value).to_ascii_lowercase().as_str() {
                    "laplace" | "poisson" => Some(true),
                    "heat" | "wave" => Some(false),
                    other => {
                        return Err(err(
                            lineno,
                            format!(
                                "pde must be \"laplace\", \"poisson\", \"heat\" or \
                                 \"wave\", got `{other}`"
                            ),
                        ))
                    }
                }
            }
            "method" => {
                method = match unquote(value).to_ascii_lowercase().as_str() {
                    "jacobi" | "j" => HwUpdateMethod::Jacobi,
                    "hybrid" | "h" => HwUpdateMethod::Hybrid,
                    other => {
                        return Err(err(
                            lineno,
                            format!("method must be \"jacobi\" or \"hybrid\", got `{other}`"),
                        ))
                    }
                }
            }
            other => return Err(err(lineno, format!("unknown key `{other}`"))),
        }
    }

    let elastic = match (subarrays, width) {
        (Some(s), Some(w)) => Some(ElasticConfig {
            subarrays: s,
            width: w,
        }),
        (None, None) => None,
        _ => {
            return Err(err(
                0,
                "subarrays and width must be given together (or both omitted \
                 for the planner's choice)",
            ))
        }
    };

    let service = if queue_capacity.is_some()
        || max_job_iterations.is_some()
        || deadline_iterations.is_some()
        || checkpoint_every.is_some()
        || journal_dir.is_some()
    {
        Some(ServiceSpec {
            queue_capacity: queue_capacity.unwrap_or(16),
            max_job_iterations: max_job_iterations.unwrap_or(1_000),
            deadline_iterations: deadline_iterations.unwrap_or(20_000),
            checkpoint_every,
            journal_dir,
        })
    } else {
        None
    };

    let frontend = if workers.is_some()
        || tenant_quotas.is_some()
        || hedge.is_some()
        || entry_rung.is_some()
    {
        Some(FrontendSpec {
            workers: workers.unwrap_or(1),
            tenant_in_flight_quotas: tenant_quotas.unwrap_or_default(),
            hedge_enabled: hedge.unwrap_or(false),
            entry_rung_index: entry_rung.unwrap_or(0),
        })
    } else {
        None
    };

    let plan = if tolerance.is_some()
        || precision.is_some()
        || steady_state.is_some()
        || job_iterations.is_some()
        || parallel_threads.is_some()
        || scale.is_some()
        || tile_depth.is_some()
    {
        Some(SolvePlan {
            rows,
            cols,
            method,
            tolerance,
            requested_iterations: job_iterations.unwrap_or(1_000),
            precision: precision.unwrap_or(PrecisionClass::F32),
            steady_state: steady_state.unwrap_or(true),
            scale: scale.unwrap_or(1.0),
            parallel_threads: parallel_threads.unwrap_or(4),
            tile_depth: tile_depth.unwrap_or(1),
        })
    } else {
        None
    };

    Ok(ParsedConfig {
        target: LintTarget {
            config,
            elastic,
            rows,
            cols,
            method,
        },
        service,
        frontend,
        plan,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_full_file() {
        let t = parse(
            "# the paper's design point\n\
             [accelerator]\n\
             pe_rows = 8\n\
             pe_cols = 8\n\
             fifo_depth = 64\n\
             buffer_banks = 32\n\
             buffer_depth = 32\n\
             clock_mhz = 200\n\
             dram_gb_s = 128\n\
             [deployment]\n\
             grid_rows = 512   # tall\n\
             grid_cols = 256\n\
             method = \"hybrid\"\n\
             subarrays = 2\n\
             width = 32\n",
        )
        .unwrap();
        assert_eq!(t.config, FdmaxConfig::paper_default());
        assert_eq!(t.rows, 512);
        assert_eq!(t.cols, 256);
        assert_eq!(t.method, HwUpdateMethod::Hybrid);
        assert_eq!(
            t.elastic,
            Some(ElasticConfig {
                subarrays: 2,
                width: 32
            })
        );
    }

    #[test]
    fn defaults_fill_missing_keys() {
        let t = parse("pe_rows = 4\n").unwrap();
        assert_eq!(t.config.pe_rows, 4);
        assert_eq!(t.config.pe_cols, 8, "default");
        assert_eq!((t.rows, t.cols), (1000, 1000));
        assert_eq!(t.method, HwUpdateMethod::Jacobi);
        assert_eq!(t.elastic, None);
    }

    #[test]
    fn method_letters_accepted() {
        assert_eq!(
            parse("method = J\n").unwrap().method,
            HwUpdateMethod::Jacobi
        );
        assert_eq!(
            parse("method = \"H\"\n").unwrap().method,
            HwUpdateMethod::Hybrid
        );
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = parse("pe_rows = 8\nbogus_key = 1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.to_string().contains("bogus_key"));

        let e = parse("pe_rows = eight\n").unwrap_err();
        assert_eq!(e.line, 1);

        let e = parse("pe_rows\n").unwrap_err();
        assert!(e.message.contains("key = value"));

        let e = parse("dram_gb_s = -3\n").unwrap_err();
        assert!(e.message.contains("positive"));
    }

    #[test]
    fn service_keys_activate_the_service_spec() {
        let p = parse_full(
            "[service]\n\
             queue_capacity = 32\n\
             deadline_iterations = 4000\n",
        )
        .unwrap();
        assert_eq!(
            p.service,
            Some(ServiceSpec {
                queue_capacity: 32,
                max_job_iterations: 1_000, // default fills the gap
                deadline_iterations: 4_000,
                checkpoint_every: None,
                journal_dir: None,
            })
        );

        // No service key, no service spec — and `parse` drops it anyway.
        assert_eq!(parse_full("pe_rows = 8\n").unwrap().service, None);
        let _ = parse("queue_capacity = 4\n").unwrap();
    }

    #[test]
    fn durability_keys_activate_and_fill_the_service_spec() {
        let p = parse_full(
            "[service]\n\
             checkpoint_every = 64\n\
             journal_dir = \"/var/fdmax/journal-a\"\n",
        )
        .unwrap();
        let spec = p.service.expect("durability keys activate the spec");
        assert_eq!(spec.checkpoint_every, Some(64));
        assert_eq!(spec.journal_dir.as_deref(), Some("/var/fdmax/journal-a"));
        assert_eq!(spec.queue_capacity, 16, "defaults fill the rest");

        // An unquoted path parses too.
        let p = parse_full("journal_dir = /tmp/j\n").unwrap();
        assert_eq!(p.service.unwrap().journal_dir.as_deref(), Some("/tmp/j"));
    }

    #[test]
    fn frontend_keys_activate_the_frontend_spec() {
        let p = parse_full(
            "[frontend]\n\
             workers = 4\n\
             tenant_in_flight_quotas = \"2, 2, 1\"\n\
             hedge = true\n\
             entry_rung = \"krylov\"\n",
        )
        .unwrap();
        assert_eq!(
            p.frontend,
            Some(FrontendSpec {
                workers: 4,
                tenant_in_flight_quotas: vec![2, 2, 1],
                hedge_enabled: true,
                entry_rung_index: 5,
            })
        );

        // The tiled rung sits between parallel and software.
        let p = parse_full("entry_rung = \"tiled\"\n").unwrap();
        assert_eq!(p.frontend.unwrap().entry_rung_index, 3);

        // One key is enough; the rest default.
        let p = parse_full("workers = 2\n").unwrap();
        assert_eq!(
            p.frontend,
            Some(FrontendSpec {
                workers: 2,
                tenant_in_flight_quotas: Vec::new(),
                hedge_enabled: false,
                entry_rung_index: 0,
            })
        );
        assert_eq!(parse_full("pe_rows = 8\n").unwrap().frontend, None);

        let e = parse_full("hedge = maybe\n").unwrap_err();
        assert!(e.message.contains("true or false"));
        let e = parse_full("entry_rung = \"metal\"\n").unwrap_err();
        assert!(e.message.contains("entry_rung"));
        let e = parse_full("tenant_in_flight_quotas = \"2, x\"\n").unwrap_err();
        assert!(e.message.contains("non-negative integer"));
    }

    #[test]
    fn plan_keys_activate_the_solve_plan() {
        let p = parse_full(
            "[deployment]\n\
             grid_rows = 64\n\
             grid_cols = 64\n\
             method = \"hybrid\"\n\
             [job]\n\
             tolerance = 1e-5\n\
             precision = \"f64\"\n\
             pde = \"poisson\"\n\
             job_iterations = 5000\n\
             parallel_threads = 8\n\
             scale = 2.5\n\
             tile_depth = 4\n",
        )
        .unwrap();
        let plan = p.plan.expect("plan keys activate the solve plan");
        assert_eq!((plan.rows, plan.cols), (64, 64));
        assert_eq!(plan.method, HwUpdateMethod::Hybrid);
        assert_eq!(plan.tolerance, Some(1e-5));
        assert_eq!(plan.precision, PrecisionClass::F64);
        assert!(plan.steady_state);
        assert_eq!(plan.requested_iterations, 5000);
        assert_eq!(plan.parallel_threads, 8);
        assert_eq!(plan.scale, 2.5);
        assert_eq!(plan.tile_depth, 4);

        // One key is enough; the rest default.
        let p = parse_full("tolerance = 1e-4\n").unwrap();
        let plan = p.plan.unwrap();
        assert_eq!(plan.precision, PrecisionClass::F32);
        assert!(plan.steady_state);
        assert_eq!(plan.scale, 1.0);
        assert_eq!(plan.tile_depth, 1, "tiling is off by default");

        // `tile_depth` alone activates the plan too.
        let p = parse_full("tile_depth = 8\n").unwrap();
        assert_eq!(p.plan.unwrap().tile_depth, 8);

        // No plan key, no plan.
        assert_eq!(parse_full("pe_rows = 8\n").unwrap().plan, None);

        // Transient PDEs clear steady_state; bad values are rejected.
        assert!(
            !parse_full("pde = \"heat\"\n")
                .unwrap()
                .plan
                .unwrap()
                .steady_state
        );
        assert!(parse_full("pde = \"elliptic\"\n").is_err());
        assert!(parse_full("precision = \"f128\"\n").is_err());
    }

    #[test]
    fn half_an_elastic_pair_is_rejected() {
        let e = parse("subarrays = 2\n").unwrap_err();
        assert_eq!(e.line, 0);
        assert!(e.to_string().contains("together"));
    }
}
