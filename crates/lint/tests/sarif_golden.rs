//! Golden-file tests for the SARIF 2.1.0 renderer: the log is
//! deterministic byte for byte, so CI annotation uploaders can rely on
//! stable rule ids, levels and locations across releases.
//!
//! Regenerate after an intentional schema or diagnostic change with:
//!
//! ```text
//! cargo run -p fdmax-lint -- --format sarif <config> > <golden>.sarif
//! ```

use fdmax_lint::configfile;
use fdmax_lint::render::render_sarif;

fn sarif_for(origin: &str, path: &str) -> String {
    let source = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("{path}: {e}"));
    let parsed = configfile::parse_full(&source).expect("golden configs parse");
    let report = fdmax_lint::lint_full(
        &parsed.target,
        parsed.service.as_ref(),
        parsed.frontend.as_ref(),
        parsed.plan.as_ref(),
    );
    render_sarif(&[(origin.to_string(), report)])
}

#[test]
fn dirty_config_matches_the_golden_sarif_log() {
    let sarif = sarif_for(
        "crates/lint/tests/fixtures/infeasible_plan.toml",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/tests/fixtures/infeasible_plan.toml"
        ),
    );
    let golden = include_str!("golden/infeasible_plan.sarif");
    assert_eq!(
        sarif,
        golden.trim_end(),
        "regenerate the golden if the change is intentional"
    );
    // Spot-check the properties CI consumes.
    assert!(sarif.contains("\"ruleId\":\"FDX016\""));
    assert!(sarif.contains("\"level\":\"error\""));
    assert!(sarif.contains("\"ruleId\":\"FDX019\""));
}

#[test]
fn clean_config_matches_the_golden_sarif_log() {
    let sarif = sarif_for(
        "examples/configs/steady_jacobi_service.toml",
        concat!(
            env!("CARGO_MANIFEST_DIR"),
            "/../../examples/configs/steady_jacobi_service.toml"
        ),
    );
    let golden = include_str!("golden/steady_jacobi_service.sarif");
    assert_eq!(
        sarif,
        golden.trim_end(),
        "regenerate the golden if the change is intentional"
    );
    // A clean file still carries the full rule table, but no results.
    assert!(sarif.contains("\"results\":[]"));
    assert!(sarif.contains("\"id\":\"FDX019\""));
}
