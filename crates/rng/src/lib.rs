//! Deterministic pseudo-random numbers for simulation and testing.
//!
//! Everything random in the FDMAX workspace — workload fuzzing, the
//! property-style test harnesses, and the fault-injection campaigns —
//! must be **reproducible from a single `u64` seed**, byte-identical
//! across platforms and builds. This crate provides that substrate with
//! no external dependencies:
//!
//! * [`DetRng`] — xoshiro256\*\* (Blackman & Vigna), seeded through
//!   splitmix64 so that every seed (including 0) yields a well-mixed
//!   state;
//! * [`DetRng::fork`] — an independent child stream, used to give each
//!   fault-injection site its own stream so that adding draws at one
//!   site never perturbs another (a requirement for stable fault
//!   traces across code changes);
//! * small-range helpers (`gen_range`, `gen_f64`, `gen_bool`) mirroring
//!   the parts of the `rand` API the workspace previously used.
//!
//! The generator is *not* cryptographic and must never be used for
//! security purposes.

use core::fmt;

/// splitmix64 step: the canonical 64-bit mixer used for seeding.
#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic xoshiro256\*\* generator.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DetRng {
    s: [u64; 4],
}

impl DetRng {
    /// Creates a generator from a 64-bit seed via splitmix64 expansion.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        DetRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// An independent child generator. The parent advances by one draw;
    /// the child's stream shares no state with the parent's future
    /// output (beyond the usual xoshiro statistical guarantees).
    pub fn fork(&mut self) -> DetRng {
        DetRng::seed_from_u64(self.next_u64())
    }

    /// A uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "gen_range needs a nonempty range [{lo}, {hi})");
        let span = (hi - lo) as u64;
        // Multiply-shift range reduction (Lemire). The bias for spans far
        // below 2^64 is negligible for simulation purposes and the result
        // is still fully deterministic.
        let x = self.next_u64();
        lo + ((x as u128 * span as u128) >> 64) as usize
    }

    /// A uniform integer in `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi`.
    pub fn gen_range_inclusive(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo <= hi, "gen_range_inclusive needs lo <= hi");
        self.gen_range(lo, hi + 1)
    }

    /// A uniform `f64` in `[0, 1)` with 53 random bits.
    pub fn gen_unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if the bounds are not finite or `lo > hi`.
    pub fn gen_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(
            lo.is_finite() && hi.is_finite() && lo <= hi,
            "bad range [{lo}, {hi})"
        );
        lo + self.gen_unit_f64() * (hi - lo)
    }

    /// `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_unit_f64() < p.clamp(0.0, 1.0)
    }

    /// A uniform bit index in `[0, 32)` — handy for 32-bit word bit flips.
    pub fn gen_bit32(&mut self) -> u32 {
        (self.next_u64() >> 59) as u32 % 32
    }
}

impl fmt::Display for DetRng {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "DetRng[{:016x} {:016x} {:016x} {:016x}]",
            self.s[0], self.s[1], self.s[2], self.s[3]
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = DetRng::seed_from_u64(42);
        let mut b = DetRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = DetRng::seed_from_u64(1);
        let mut b = DetRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn zero_seed_is_well_mixed() {
        let mut r = DetRng::seed_from_u64(0);
        // A raw xoshiro seeded with zeros would emit zeros forever; the
        // splitmix expansion must prevent that.
        assert_ne!(r.next_u64(), 0);
        assert_ne!(r.next_u64(), r.next_u64());
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut r = DetRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = r.gen_range(3, 17);
            assert!((3..17).contains(&v));
            let w = r.gen_range_inclusive(5, 5);
            assert_eq!(w, 5);
            let f = r.gen_f64(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&f));
            let u = r.gen_unit_f64();
            assert!((0.0..1.0).contains(&u));
            assert!(r.gen_bit32() < 32);
        }
    }

    #[test]
    fn range_covers_all_values() {
        let mut r = DetRng::seed_from_u64(9);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(0, 8)] = true;
        }
        assert!(seen.iter().all(|&s| s), "all bucket values reachable");
    }

    #[test]
    fn gen_bool_edge_probabilities() {
        let mut r = DetRng::seed_from_u64(3);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
        let heads = (0..10_000).filter(|_| r.gen_bool(0.5)).count();
        assert!((4_000..6_000).contains(&heads), "rough fairness: {heads}");
    }

    #[test]
    fn forked_streams_are_independent_and_deterministic() {
        let mut a = DetRng::seed_from_u64(11);
        let mut b = DetRng::seed_from_u64(11);
        let mut fa = a.fork();
        let mut fb = b.fork();
        for _ in 0..32 {
            assert_eq!(fa.next_u64(), fb.next_u64());
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn display_shows_state() {
        let r = DetRng::seed_from_u64(1);
        assert!(r.to_string().starts_with("DetRng["));
    }
}
