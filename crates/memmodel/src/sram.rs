//! Banked on-chip SRAM buffer model.
//!
//! FDMAX's `CurBuffer`, `OffsetBuffer` and `NextBuffer` are "banked to support
//! the concurrent data accesses of the PEs" (§6.1): each buffer has 32
//! single-ported banks of depth 32 (4 KB per buffer) in the default
//! configuration, and the bank count is a first-class design parameter
//! (Fig. 9b sweeps 8–64 banks).
//!
//! [`BankedSram`] models timing and capacity: a group of same-cycle
//! accesses costs `ceil(max accesses landing on one bank)` sub-cycles.
//! Data itself lives with the simulator; banks here are an interleaving
//! function over element addresses.

use core::fmt;

/// Error returned by [`BankedSram::try_new`] for a degenerate geometry.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramConfigError {
    /// The zero-valued parameter: `"banks"`, `"depth"` or
    /// `"element_bytes"`.
    pub parameter: &'static str,
}

impl fmt::Display for SramConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.parameter {
            "banks" => f.write_str("need at least one bank"),
            "depth" => f.write_str("need nonzero depth"),
            _ => f.write_str("need nonzero element size"),
        }
    }
}

impl std::error::Error for SramConfigError {}

/// Timing/capacity model of one banked, single-ported SRAM buffer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BankedSram {
    banks: usize,
    depth: usize,
    element_bytes: usize,
}

impl BankedSram {
    /// The paper's default buffer: 32 banks x depth 32 x 4 B = 4 KB.
    pub fn fdmax_default() -> Self {
        BankedSram::new(32, 32, 4)
    }

    /// Creates a buffer with `banks` single-ported banks, each holding
    /// `depth` elements of `element_bytes` bytes.
    ///
    /// # Panics
    ///
    /// Panics if any argument is zero; [`BankedSram::try_new`] is the
    /// non-panicking variant.
    pub fn new(banks: usize, depth: usize, element_bytes: usize) -> Self {
        match Self::try_new(banks, depth, element_bytes) {
            Ok(s) => s,
            Err(e) => panic!("{e}"),
        }
    }

    /// Fallible constructor: rejects any zero dimension instead of
    /// panicking.
    ///
    /// # Errors
    ///
    /// Returns [`SramConfigError`] naming the offending parameter.
    pub fn try_new(
        banks: usize,
        depth: usize,
        element_bytes: usize,
    ) -> Result<Self, SramConfigError> {
        for (parameter, value) in [
            ("banks", banks),
            ("depth", depth),
            ("element_bytes", element_bytes),
        ] {
            if value == 0 {
                return Err(SramConfigError { parameter });
            }
        }
        Ok(BankedSram {
            banks,
            depth,
            element_bytes,
        })
    }

    /// Number of banks.
    pub fn banks(&self) -> usize {
        self.banks
    }

    /// Elements per bank.
    pub fn depth(&self) -> usize {
        self.depth
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.banks * self.depth * self.element_bytes
    }

    /// Total capacity in elements.
    pub fn capacity_elements(&self) -> usize {
        self.banks * self.depth
    }

    /// The bank an element address maps to (low-order interleaving).
    pub fn bank_of(&self, element_addr: usize) -> usize {
        element_addr % self.banks
    }

    /// Sub-cycles needed to service a set of same-cycle element accesses:
    /// the maximum number of accesses that collide on one bank.
    ///
    /// An empty access set costs zero.
    pub fn conflict_cycles(&self, element_addrs: &[usize]) -> u64 {
        if element_addrs.is_empty() {
            return 0;
        }
        let mut per_bank = vec![0u64; self.banks];
        for &a in element_addrs {
            per_bank[self.bank_of(a)] += 1;
        }
        per_bank.into_iter().max().unwrap_or(0)
    }

    /// Fast path for the FDMAX access pattern: `n` accesses to
    /// *consecutive* element addresses in one cycle (the PEs read adjacent
    /// columns). Consecutive addresses spread perfectly across banks, so
    /// the cost is `ceil(n / banks)` sub-cycles.
    pub fn consecutive_access_cycles(&self, n: usize) -> u64 {
        n.div_ceil(self.banks) as u64
    }

    /// Peak accesses serviceable per cycle (one per bank).
    pub fn peak_accesses_per_cycle(&self) -> usize {
        self.banks
    }
}

impl fmt::Display for BankedSram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} banks x {} x {} B = {} KB",
            self.banks,
            self.depth,
            self.element_bytes,
            self.capacity_bytes() as f64 / 1024.0
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_sizing() {
        let s = BankedSram::fdmax_default();
        assert_eq!(s.banks(), 32);
        assert_eq!(s.depth(), 32);
        assert_eq!(s.capacity_bytes(), 4096, "4 KB per buffer (§6.1)");
        assert_eq!(s.capacity_elements(), 1024);
        assert_eq!(s.peak_accesses_per_cycle(), 32);
    }

    #[test]
    fn consecutive_accesses_spread_over_banks() {
        let s = BankedSram::fdmax_default();
        assert_eq!(s.consecutive_access_cycles(0), 0);
        assert_eq!(s.consecutive_access_cycles(1), 1);
        assert_eq!(s.consecutive_access_cycles(32), 1);
        assert_eq!(s.consecutive_access_cycles(33), 2);
        // 64 PEs on 32 banks: 2 sub-cycles — the 8x8 default pays a factor
        // of 2, the trade-off §6.1 calls the "optimal balance".
        assert_eq!(s.consecutive_access_cycles(64), 2);
    }

    #[test]
    fn conflict_cycles_matches_worst_bank() {
        let s = BankedSram::new(4, 8, 4);
        // All four on different banks: one cycle.
        assert_eq!(s.conflict_cycles(&[0, 1, 2, 3]), 1);
        // Two pairs collide: two cycles.
        assert_eq!(s.conflict_cycles(&[0, 4, 1, 5]), 2);
        // All on bank 0: four cycles.
        assert_eq!(s.conflict_cycles(&[0, 4, 8, 12]), 4);
        assert_eq!(s.conflict_cycles(&[]), 0);
    }

    #[test]
    fn conflict_agrees_with_consecutive_fast_path() {
        let s = BankedSram::new(8, 16, 4);
        for n in [1usize, 5, 8, 9, 16, 24, 25] {
            let addrs: Vec<usize> = (0..n).collect();
            assert_eq!(
                s.conflict_cycles(&addrs),
                s.consecutive_access_cycles(n),
                "mismatch at n={n}"
            );
        }
    }

    #[test]
    fn bank_mapping_is_low_order_interleaved() {
        let s = BankedSram::new(8, 16, 4);
        assert_eq!(s.bank_of(0), 0);
        assert_eq!(s.bank_of(7), 7);
        assert_eq!(s.bank_of(8), 0);
        assert_eq!(s.bank_of(13), 5);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_rejected() {
        let _ = BankedSram::new(0, 32, 4);
    }

    #[test]
    fn try_new_reports_the_offending_parameter() {
        assert_eq!(
            BankedSram::try_new(0, 32, 4).unwrap_err().parameter,
            "banks"
        );
        assert_eq!(
            BankedSram::try_new(32, 0, 4).unwrap_err().parameter,
            "depth"
        );
        let err = BankedSram::try_new(32, 32, 0).unwrap_err();
        assert_eq!(err.parameter, "element_bytes");
        assert!(err.to_string().contains("element size"));
        assert_eq!(
            BankedSram::try_new(32, 32, 4).unwrap(),
            BankedSram::fdmax_default()
        );
    }

    #[test]
    fn display_shows_kb() {
        assert!(BankedSram::fdmax_default().to_string().contains("4 KB"));
    }
}
