//! The event ledger every hardware model writes into.
//!
//! Counts are in *events*: one `fp_mul` is one 32-bit floating-point
//! multiplication, one `dram_read` is one 32-bit element read from DRAM,
//! one `sram_read` is one 32-bit element read from an on-chip buffer, and
//! so on. The energy model ([`crate::energy`]) multiplies these by per-op
//! energies; the performance model uses `cycles`/`stall_cycles`.

use core::fmt;
use core::ops::{Add, AddAssign};

/// Exact event counts accumulated during a simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EventCounters {
    /// Total clock cycles, including stalls.
    pub cycles: u64,
    /// Cycles lost to SRAM bank conflicts or DRAM bandwidth saturation.
    pub stall_cycles: u64,
    /// 32-bit floating-point multiplications.
    pub fp_mul: u64,
    /// 32-bit floating-point additions/subtractions.
    pub fp_add: u64,
    /// 32-bit elements read from off-chip DRAM.
    pub dram_read: u64,
    /// 32-bit elements written to off-chip DRAM.
    pub dram_write: u64,
    /// 32-bit elements read from on-chip SRAM buffers.
    pub sram_read: u64,
    /// 32-bit elements written to on-chip SRAM buffers.
    pub sram_write: u64,
    /// FIFO push operations (nFIFO/pFIFO).
    pub fifo_push: u64,
    /// FIFO pop operations (nFIFO/pFIFO).
    pub fifo_pop: u64,
    /// Register-file reads inside the PEs.
    pub rf_read: u64,
    /// Register-file writes inside the PEs.
    pub rf_write: u64,
    /// Producer cycles lost to FIFO backpressure (a push found the FIFO
    /// full and stalled until the consumer drained an entry).
    pub fifo_backpressure_stalls: u64,
    /// Faults injected by an active fault campaign (SRAM upsets and DMA
    /// transfer failures).
    pub faults_injected: u64,
    /// Injected faults the modeled ECC/parity logic detected.
    pub faults_detected: u64,
    /// Injected faults the modeled ECC corrected in place.
    pub faults_corrected: u64,
    /// DMA block transfers retried after a transient failure.
    pub dma_retries: u64,
    /// Grid checkpoints written by the resilient solve loop.
    pub checkpoints: u64,
    /// Rollbacks to the last checkpoint after detected corruption or
    /// numerical divergence.
    pub rollbacks: u64,
    /// Method/back-end fallbacks (Hybrid -> Jacobi, accelerator ->
    /// software) taken after repeated recovery failures.
    pub fallbacks: u64,
}

impl EventCounters {
    /// A ledger with every count at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Cycles actually doing work (total minus stalls).
    pub fn active_cycles(&self) -> u64 {
        self.cycles.saturating_sub(self.stall_cycles)
    }

    /// All floating-point operations.
    pub fn flops(&self) -> u64 {
        self.fp_mul + self.fp_add
    }

    /// All DRAM traffic in elements.
    pub fn dram_traffic(&self) -> u64 {
        self.dram_read + self.dram_write
    }

    /// All DRAM traffic in bytes, assuming 32-bit elements.
    pub fn dram_bytes(&self) -> u64 {
        self.dram_traffic() * 4
    }

    /// All SRAM accesses.
    pub fn sram_accesses(&self) -> u64 {
        self.sram_read + self.sram_write
    }

    /// All FIFO operations.
    pub fn fifo_ops(&self) -> u64 {
        self.fifo_push + self.fifo_pop
    }

    /// All register-file accesses.
    pub fn rf_accesses(&self) -> u64 {
        self.rf_read + self.rf_write
    }

    /// All recovery-related events (injected faults, retries, rollbacks,
    /// fallbacks) — nonzero only when a fault campaign was active.
    pub fn recovery_events(&self) -> u64 {
        self.faults_injected
            + self.dma_retries
            + self.rollbacks
            + self.fallbacks
            + self.fifo_backpressure_stalls
    }

    /// Multiplies every count (including cycles) by `n` — handy for
    /// extrapolating a measured single iteration to `n` identical ones.
    pub fn scaled(&self, n: u64) -> EventCounters {
        EventCounters {
            cycles: self.cycles * n,
            stall_cycles: self.stall_cycles * n,
            fp_mul: self.fp_mul * n,
            fp_add: self.fp_add * n,
            dram_read: self.dram_read * n,
            dram_write: self.dram_write * n,
            sram_read: self.sram_read * n,
            sram_write: self.sram_write * n,
            fifo_push: self.fifo_push * n,
            fifo_pop: self.fifo_pop * n,
            rf_read: self.rf_read * n,
            rf_write: self.rf_write * n,
            fifo_backpressure_stalls: self.fifo_backpressure_stalls * n,
            faults_injected: self.faults_injected * n,
            faults_detected: self.faults_detected * n,
            faults_corrected: self.faults_corrected * n,
            dma_retries: self.dma_retries * n,
            checkpoints: self.checkpoints * n,
            rollbacks: self.rollbacks * n,
            fallbacks: self.fallbacks * n,
        }
    }
}

impl Add for EventCounters {
    type Output = EventCounters;
    fn add(mut self, rhs: EventCounters) -> EventCounters {
        self += rhs;
        self
    }
}

impl AddAssign for EventCounters {
    fn add_assign(&mut self, rhs: EventCounters) {
        self.cycles += rhs.cycles;
        self.stall_cycles += rhs.stall_cycles;
        self.fp_mul += rhs.fp_mul;
        self.fp_add += rhs.fp_add;
        self.dram_read += rhs.dram_read;
        self.dram_write += rhs.dram_write;
        self.sram_read += rhs.sram_read;
        self.sram_write += rhs.sram_write;
        self.fifo_push += rhs.fifo_push;
        self.fifo_pop += rhs.fifo_pop;
        self.rf_read += rhs.rf_read;
        self.rf_write += rhs.rf_write;
        self.fifo_backpressure_stalls += rhs.fifo_backpressure_stalls;
        self.faults_injected += rhs.faults_injected;
        self.faults_detected += rhs.faults_detected;
        self.faults_corrected += rhs.faults_corrected;
        self.dma_retries += rhs.dma_retries;
        self.checkpoints += rhs.checkpoints;
        self.rollbacks += rhs.rollbacks;
        self.fallbacks += rhs.fallbacks;
    }
}

impl fmt::Display for EventCounters {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "cycles:      {:>14} (stalls {})",
            self.cycles, self.stall_cycles
        )?;
        writeln!(f, "fp mul/add:  {:>14} / {}", self.fp_mul, self.fp_add)?;
        writeln!(
            f,
            "dram r/w:    {:>14} / {}",
            self.dram_read, self.dram_write
        )?;
        writeln!(
            f,
            "sram r/w:    {:>14} / {}",
            self.sram_read, self.sram_write
        )?;
        writeln!(
            f,
            "fifo push/pop: {:>12} / {}",
            self.fifo_push, self.fifo_pop
        )?;
        write!(f, "rf r/w:      {:>14} / {}", self.rf_read, self.rf_write)?;
        if self.recovery_events() + self.faults_corrected + self.checkpoints > 0 {
            writeln!(f)?;
            writeln!(
                f,
                "faults:      {:>14} injected ({} detected, {} corrected)",
                self.faults_injected, self.faults_detected, self.faults_corrected
            )?;
            write!(
                f,
                "recovery:    {:>14} dma retries, {} ckpts, {} rollbacks, {} fallbacks, {} fifo stalls",
                self.dma_retries,
                self.checkpoints,
                self.rollbacks,
                self.fallbacks,
                self.fifo_backpressure_stalls
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> EventCounters {
        EventCounters {
            cycles: 100,
            stall_cycles: 10,
            fp_mul: 3,
            fp_add: 5,
            dram_read: 7,
            dram_write: 2,
            sram_read: 20,
            sram_write: 10,
            fifo_push: 4,
            fifo_pop: 4,
            rf_read: 50,
            rf_write: 25,
            fifo_backpressure_stalls: 1,
            faults_injected: 6,
            faults_detected: 4,
            faults_corrected: 2,
            dma_retries: 3,
            checkpoints: 2,
            rollbacks: 1,
            fallbacks: 1,
        }
    }

    #[test]
    fn derived_totals() {
        let c = sample();
        assert_eq!(c.active_cycles(), 90);
        assert_eq!(c.flops(), 8);
        assert_eq!(c.dram_traffic(), 9);
        assert_eq!(c.dram_bytes(), 36);
        assert_eq!(c.sram_accesses(), 30);
        assert_eq!(c.fifo_ops(), 8);
        assert_eq!(c.rf_accesses(), 75);
        assert_eq!(c.recovery_events(), 6 + 3 + 1 + 1 + 1);
    }

    #[test]
    fn add_and_add_assign_agree() {
        let a = sample();
        let b = sample();
        let sum = a + b;
        assert_eq!(sum, a.scaled(2));
        let mut c = sample();
        c += sample();
        assert_eq!(c, sum);
    }

    #[test]
    fn scaled_multiplies_everything() {
        let c = sample().scaled(3);
        assert_eq!(c.cycles, 300);
        assert_eq!(c.rf_write, 75);
        assert_eq!(c.faults_injected, 18);
        assert_eq!(c.rollbacks, 3);
        assert_eq!(sample().scaled(0), EventCounters::new());
    }

    #[test]
    fn active_cycles_saturates() {
        let c = EventCounters {
            cycles: 5,
            stall_cycles: 9,
            ..EventCounters::new()
        };
        assert_eq!(c.active_cycles(), 0);
    }

    #[test]
    fn display_is_nonempty_and_mentions_cycles() {
        let s = sample().to_string();
        assert!(s.contains("cycles"));
        assert!(s.contains("100"));
        assert!(
            s.contains("injected"),
            "recovery tallies shown when present"
        );
        let quiet = EventCounters::new().to_string();
        assert!(!quiet.contains("injected"), "quiet ledger stays compact");
    }
}
