//! Functional FIFO with occupancy tracking.
//!
//! FDMAX uses two FIFO families: nFIFO (row-wise partial products that
//! cross column batches) and pFIFO (incomplete final products awaiting the
//! `HaloAdders`). Each is 64 entries deep per subarray in the default
//! configuration. The cycle-accurate simulator stores real values in
//! [`Fifo`]; overflow is a hard modelling error (the hardware sizes its
//! FIFOs so it cannot happen for supported strip heights), so `push`
//! reports it.

use core::fmt;

/// Error returned when pushing to a full FIFO.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FifoOverflow {
    /// Configured capacity of the FIFO that overflowed.
    pub capacity: usize,
}

impl fmt::Display for FifoOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fifo overflow (capacity {})", self.capacity)
    }
}

impl std::error::Error for FifoOverflow {}

/// A bounded FIFO that tracks push/pop counts and high-water occupancy.
#[derive(Clone, Debug)]
pub struct Fifo<T> {
    items: std::collections::VecDeque<T>,
    capacity: usize,
    pushes: u64,
    pops: u64,
    high_water: usize,
    overflows: u64,
    backpressure_stalls: u64,
}

impl<T> Fifo<T> {
    /// Creates a FIFO holding at most `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "fifo capacity must be nonzero");
        Fifo {
            items: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            pushes: 0,
            pops: 0,
            high_water: 0,
            overflows: 0,
            backpressure_stalls: 0,
        }
    }

    /// Configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current occupancy.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// `true` when at capacity.
    pub fn is_full(&self) -> bool {
        self.items.len() == self.capacity
    }

    /// Appends an entry.
    ///
    /// # Errors
    ///
    /// Returns [`FifoOverflow`] (with the value intact inside the FIFO
    /// untouched) when full.
    pub fn push(&mut self, value: T) -> Result<(), FifoOverflow> {
        if self.is_full() {
            return Err(FifoOverflow {
                capacity: self.capacity,
            });
        }
        self.items.push_back(value);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        Ok(())
    }

    /// Appends an entry even when the FIFO is at capacity, modelling the
    /// producer stalling until the consumer drains one slot instead of
    /// losing data (how the real interlocked FIFOs behave). Returns the
    /// stall cycles charged: zero on a clean push, one per entry the
    /// producer had to wait out when full.
    ///
    /// Functionally the value is always stored, so a simulation that hits
    /// backpressure stays bit-exact; only the timing ledger changes.
    pub fn push_backpressure(&mut self, value: T) -> u64 {
        // `>=`, not `is_full()`: earlier backpressure pushes may already
        // have the occupancy above capacity.
        let stall = if self.items.len() >= self.capacity {
            self.overflows += 1;
            // One modelled cycle for the consumer to free a slot.
            1
        } else {
            0
        };
        self.backpressure_stalls += stall;
        self.items.push_back(value);
        self.pushes += 1;
        self.high_water = self.high_water.max(self.items.len());
        stall
    }

    /// Removes and returns the oldest entry, `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        let v = self.items.pop_front();
        if v.is_some() {
            self.pops += 1;
        }
        v
    }

    /// Peeks at the oldest entry without removing it.
    pub fn front(&self) -> Option<&T> {
        self.items.front()
    }

    /// Total pushes performed.
    pub fn pushes(&self) -> u64 {
        self.pushes
    }

    /// Total pops performed.
    pub fn pops(&self) -> u64 {
        self.pops
    }

    /// Highest occupancy ever reached.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Times a push found the FIFO already full (backpressure events).
    pub fn overflows(&self) -> u64 {
        self.overflows
    }

    /// Total producer stall cycles charged by [`Fifo::push_backpressure`].
    pub fn backpressure_stalls(&self) -> u64 {
        self.backpressure_stalls
    }

    /// Empties the FIFO, keeping the statistics.
    pub fn clear(&mut self) {
        self.items.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_pop_fifo_order() {
        let mut f = Fifo::new(4);
        f.push(1).unwrap();
        f.push(2).unwrap();
        f.push(3).unwrap();
        assert_eq!(f.front(), Some(&1));
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), None);
    }

    #[test]
    fn overflow_is_reported() {
        let mut f = Fifo::new(2);
        f.push(1.0f32).unwrap();
        f.push(2.0).unwrap();
        let err = f.push(3.0).unwrap_err();
        assert_eq!(err.capacity, 2);
        assert!(err.to_string().contains("overflow"));
        // The FIFO is unchanged.
        assert_eq!(f.len(), 2);
        assert_eq!(f.pop(), Some(1.0));
    }

    #[test]
    fn statistics_track_activity() {
        let mut f = Fifo::new(8);
        for i in 0..5 {
            f.push(i).unwrap();
        }
        assert_eq!(f.high_water(), 5);
        f.pop();
        f.pop();
        f.push(9).unwrap();
        assert_eq!(f.pushes(), 6);
        assert_eq!(f.pops(), 2);
        assert_eq!(f.len(), 4);
        assert_eq!(f.high_water(), 5, "high water does not shrink");
        f.clear();
        assert!(f.is_empty());
        assert_eq!(f.pushes(), 6, "clear keeps statistics");
    }

    #[test]
    fn pop_empty_does_not_count() {
        let mut f = Fifo::<u8>::new(1);
        assert_eq!(f.pop(), None);
        assert_eq!(f.pops(), 0);
    }

    #[test]
    fn full_and_empty_flags() {
        let mut f = Fifo::new(1);
        assert!(f.is_empty());
        assert!(!f.is_full());
        f.push(42).unwrap();
        assert!(f.is_full());
        assert!(!f.is_empty());
    }

    #[test]
    #[should_panic(expected = "nonzero")]
    fn zero_capacity_rejected() {
        let _ = Fifo::<u8>::new(0);
    }

    #[test]
    fn backpressure_push_never_loses_data() {
        let mut f = Fifo::new(2);
        assert_eq!(f.push_backpressure(1), 0);
        assert_eq!(f.push_backpressure(2), 0);
        // Full: the producer stalls but the value still lands.
        assert_eq!(f.push_backpressure(3), 1);
        assert_eq!(f.push_backpressure(4), 1);
        assert_eq!(f.overflows(), 2);
        assert_eq!(f.backpressure_stalls(), 2);
        assert_eq!(f.high_water(), 4, "occupancy beyond capacity is visible");
        // FIFO order is preserved through the backpressure pushes.
        assert_eq!(f.pop(), Some(1));
        assert_eq!(f.pop(), Some(2));
        assert_eq!(f.pop(), Some(3));
        assert_eq!(f.pop(), Some(4));
    }

    #[test]
    fn clean_pushes_charge_no_stalls() {
        let mut f = Fifo::new(8);
        for i in 0..8 {
            assert_eq!(f.push_backpressure(i), 0);
        }
        assert_eq!(f.overflows(), 0);
        assert_eq!(f.backpressure_stalls(), 0);
    }
}
