//! DMA double-buffering timing model.
//!
//! FDMAX fetches blocks of `U^k` and `B^k` from DRAM "via Direct Memory
//! Access (DMA) into CurBuffer and OffsetBuffer" (§4.1), hiding DRAM
//! latency behind computation. With double buffering the steady-state cost
//! of processing a stream of blocks is `max(compute, transfer)` per block,
//! plus the un-overlappable first fill and last drain.

use crate::dram::DramModel;

/// Timing of one processed block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Cycles the PE array needs to process the block.
    pub compute_cycles: u64,
    /// Elements loaded from DRAM for this block.
    pub load_elements: u64,
    /// Elements stored to DRAM for this block.
    pub store_elements: u64,
}

/// Double-buffered DMA engine over a [`DramModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaEngine {
    dram: DramModel,
}

impl DmaEngine {
    /// Creates an engine on the given DRAM model.
    pub fn new(dram: DramModel) -> Self {
        DmaEngine { dram }
    }

    /// The underlying DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// DRAM cycles to transfer one block (loads + stores share the bus).
    pub fn transfer_cycles(&self, block: &BlockCost) -> u64 {
        self.dram
            .cycles_for_elements(block.load_elements + block.store_elements)
    }

    /// Cycles to process a sequence of blocks with perfect double
    /// buffering: the first load is exposed, every other block overlaps
    /// transfer with the previous block's compute, and the final store is
    /// exposed.
    pub fn pipelined_cycles(&self, blocks: &[BlockCost]) -> u64 {
        if blocks.is_empty() {
            return 0;
        }
        let first_load = self.dram.cycles_for_elements(blocks[0].load_elements);
        let last_store = self
            .dram
            .cycles_for_elements(blocks[blocks.len() - 1].store_elements);
        let steady: u64 = blocks
            .iter()
            .map(|b| b.compute_cycles.max(self.transfer_cycles(b)))
            .sum();
        first_load + steady + last_store
    }

    /// Steady-state cycles per block when every block looks the same —
    /// the closed form the analytic performance model uses.
    pub fn steady_state_cycles(&self, block: &BlockCost) -> u64 {
        block.compute_cycles.max(self.transfer_cycles(block))
    }

    /// `true` when the workload is DRAM-bound (transfer exceeds compute).
    pub fn is_bandwidth_bound(&self, block: &BlockCost) -> bool {
        self.transfer_cycles(block) > block.compute_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(DramModel::hbm_128()) // 160 elements/cycle
    }

    #[test]
    fn transfer_cycles_bundle_loads_and_stores() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 0,
            load_elements: 800,
            store_elements: 800,
        };
        assert_eq!(e.transfer_cycles(&b), 10);
    }

    #[test]
    fn compute_bound_block_hides_transfer() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 100,
            load_elements: 160,
            store_elements: 160,
        };
        assert_eq!(e.steady_state_cycles(&b), 100);
        assert!(!e.is_bandwidth_bound(&b));
    }

    #[test]
    fn bandwidth_bound_block_dominated_by_transfer() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 5,
            load_elements: 1600,
            store_elements: 0,
        };
        assert_eq!(e.steady_state_cycles(&b), 10);
        assert!(e.is_bandwidth_bound(&b));
    }

    #[test]
    fn pipelined_exposes_first_load_and_last_store() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 100,
            load_elements: 160, // 1 cycle
            store_elements: 320, // 2 cycles
        };
        let blocks = vec![b; 4];
        // 1 (first load) + 4 * max(100, 3) + 2 (last store).
        assert_eq!(e.pipelined_cycles(&blocks), 1 + 400 + 2);
        assert_eq!(e.pipelined_cycles(&[]), 0);
    }

    #[test]
    fn pipelined_handles_heterogeneous_blocks() {
        let e = engine();
        let small = BlockCost {
            compute_cycles: 10,
            load_elements: 160,
            store_elements: 160,
        };
        let big = BlockCost {
            compute_cycles: 10,
            load_elements: 16_000,
            store_elements: 0,
        };
        // first load 1 + (max(10,2) + max(10,100)) + last store 1.
        assert_eq!(e.pipelined_cycles(&[small, big]), (1 + 10 + 100));
    }
}
