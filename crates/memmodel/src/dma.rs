//! DMA double-buffering timing model.
//!
//! FDMAX fetches blocks of `U^k` and `B^k` from DRAM "via Direct Memory
//! Access (DMA) into `CurBuffer` and `OffsetBuffer`" (§4.1), hiding DRAM
//! latency behind computation. With double buffering the steady-state cost
//! of processing a stream of blocks is `max(compute, transfer)` per block,
//! plus the un-overlappable first fill and last drain.

use crate::dram::DramModel;
use crate::faults::FaultInjector;

/// Timing and recovery outcome of a fault-afflicted block sequence.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultyPipelineOutcome {
    /// Total cycles: the clean double-buffered pipeline plus every
    /// backoff wait and re-transfer. Retries serialize the pipeline, so
    /// none of the extra cycles hide behind compute.
    pub cycles: u64,
    /// Total retries across all blocks.
    pub retries: u64,
    /// Transfers that still failed after the campaign's retry budget.
    pub failed_transfers: u64,
}

/// Timing of one processed block.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct BlockCost {
    /// Cycles the PE array needs to process the block.
    pub compute_cycles: u64,
    /// Elements loaded from DRAM for this block.
    pub load_elements: u64,
    /// Elements stored to DRAM for this block.
    pub store_elements: u64,
}

/// Double-buffered DMA engine over a [`DramModel`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DmaEngine {
    dram: DramModel,
}

impl DmaEngine {
    /// Creates an engine on the given DRAM model.
    pub fn new(dram: DramModel) -> Self {
        DmaEngine { dram }
    }

    /// The underlying DRAM model.
    pub fn dram(&self) -> &DramModel {
        &self.dram
    }

    /// DRAM cycles to transfer one block (loads + stores share the bus).
    pub fn transfer_cycles(&self, block: &BlockCost) -> u64 {
        self.dram
            .cycles_for_elements(block.load_elements + block.store_elements)
    }

    /// Cycles to process a sequence of blocks with perfect double
    /// buffering: the first load is exposed, every other block overlaps
    /// transfer with the previous block's compute, and the final store is
    /// exposed.
    pub fn pipelined_cycles(&self, blocks: &[BlockCost]) -> u64 {
        if blocks.is_empty() {
            return 0;
        }
        let first_load = self.dram.cycles_for_elements(blocks[0].load_elements);
        let last_store = self
            .dram
            .cycles_for_elements(blocks[blocks.len() - 1].store_elements);
        let steady: u64 = blocks
            .iter()
            .map(|b| b.compute_cycles.max(self.transfer_cycles(b)))
            .sum();
        first_load + steady + last_store
    }

    /// [`DmaEngine::pipelined_cycles`] under a fault campaign: each
    /// block's transfer is pushed through `injector`; failed attempts
    /// wait out an exponential backoff and re-pay the transfer, all
    /// charged on top of the clean pipeline time.
    ///
    /// With an inactive campaign this returns exactly
    /// `pipelined_cycles(blocks)` and draws nothing from the injector,
    /// so fault-free runs stay bit-identical.
    pub fn pipelined_cycles_with_faults(
        &self,
        blocks: &[BlockCost],
        injector: &mut FaultInjector,
    ) -> FaultyPipelineOutcome {
        let mut out = FaultyPipelineOutcome {
            cycles: self.pipelined_cycles(blocks),
            ..FaultyPipelineOutcome::default()
        };
        if injector.campaign().dma_failure_prob <= 0.0 {
            return out;
        }
        for block in blocks {
            let attempt = injector.draw_dma_transfer(self.transfer_cycles(block));
            out.cycles += attempt.extra_cycles;
            out.retries += u64::from(attempt.retries);
            out.failed_transfers += u64::from(!attempt.succeeded);
        }
        out
    }

    /// Steady-state cycles per block when every block looks the same —
    /// the closed form the analytic performance model uses.
    pub fn steady_state_cycles(&self, block: &BlockCost) -> u64 {
        block.compute_cycles.max(self.transfer_cycles(block))
    }

    /// `true` when the workload is DRAM-bound (transfer exceeds compute).
    pub fn is_bandwidth_bound(&self, block: &BlockCost) -> bool {
        self.transfer_cycles(block) > block.compute_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine() -> DmaEngine {
        DmaEngine::new(DramModel::hbm_128()) // 160 elements/cycle
    }

    #[test]
    fn transfer_cycles_bundle_loads_and_stores() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 0,
            load_elements: 800,
            store_elements: 800,
        };
        assert_eq!(e.transfer_cycles(&b), 10);
    }

    #[test]
    fn compute_bound_block_hides_transfer() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 100,
            load_elements: 160,
            store_elements: 160,
        };
        assert_eq!(e.steady_state_cycles(&b), 100);
        assert!(!e.is_bandwidth_bound(&b));
    }

    #[test]
    fn bandwidth_bound_block_dominated_by_transfer() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 5,
            load_elements: 1600,
            store_elements: 0,
        };
        assert_eq!(e.steady_state_cycles(&b), 10);
        assert!(e.is_bandwidth_bound(&b));
    }

    #[test]
    fn pipelined_exposes_first_load_and_last_store() {
        let e = engine();
        let b = BlockCost {
            compute_cycles: 100,
            load_elements: 160,  // 1 cycle
            store_elements: 320, // 2 cycles
        };
        let blocks = vec![b; 4];
        // 1 (first load) + 4 * max(100, 3) + 2 (last store).
        assert_eq!(e.pipelined_cycles(&blocks), 1 + 400 + 2);
        assert_eq!(e.pipelined_cycles(&[]), 0);
    }

    #[test]
    fn pipelined_handles_heterogeneous_blocks() {
        let e = engine();
        let small = BlockCost {
            compute_cycles: 10,
            load_elements: 160,
            store_elements: 160,
        };
        let big = BlockCost {
            compute_cycles: 10,
            load_elements: 16_000,
            store_elements: 0,
        };
        // first load 1 + (max(10,2) + max(10,100)) + last store 1.
        assert_eq!(e.pipelined_cycles(&[small, big]), (1 + 10 + 100));
    }

    #[test]
    fn faultless_campaign_matches_clean_pipeline() {
        use crate::faults::{FaultCampaign, FaultInjector};
        let e = engine();
        let blocks = vec![
            BlockCost {
                compute_cycles: 100,
                load_elements: 160,
                store_elements: 320,
            };
            4
        ];
        let mut inj = FaultInjector::new(FaultCampaign::disabled());
        let out = e.pipelined_cycles_with_faults(&blocks, &mut inj);
        assert_eq!(out.cycles, e.pipelined_cycles(&blocks));
        assert_eq!(out.retries, 0);
        assert_eq!(out.failed_transfers, 0);
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn forced_failures_add_backoff_and_retransfer() {
        use crate::faults::{EccMode, FaultCampaign, FaultInjector};
        let e = engine();
        let b = BlockCost {
            compute_cycles: 0,
            load_elements: 800,
            store_elements: 800, // 10 transfer cycles
        };
        let mut inj = FaultInjector::new(FaultCampaign {
            seed: 11,
            sram_flips_per_iteration: 0.0,
            ecc: EccMode::None,
            dma_failure_prob: 1.0,
            max_dma_retries: 2,
            dma_backoff_cycles: 4,
        });
        let out = e.pipelined_cycles_with_faults(&[b], &mut inj);
        // Clean pipeline: first load 5 + max(0, 10) + last store 5 = 20.
        // Faults: two decorrelated-jitter waits (uniform in [4, 12) and
        // [4, 3*first)) plus two re-transfers of 10 each.
        let waits = out.cycles - 20 - 2 * 10;
        assert!((8..4 + 36).contains(&waits), "waits out of range: {waits}");
        assert_eq!(out.retries, 2);
        assert_eq!(out.failed_transfers, 1, "p=1 exhausts the retry budget");
        // The schedule is a pure function of the campaign seed.
        let mut replay = FaultInjector::new(FaultCampaign {
            seed: 11,
            sram_flips_per_iteration: 0.0,
            ecc: EccMode::None,
            dma_failure_prob: 1.0,
            max_dma_retries: 2,
            dma_backoff_cycles: 4,
        });
        assert_eq!(e.pipelined_cycles_with_faults(&[b], &mut replay), out);
    }
}
