//! Structural area/power model reproducing the paper's Table 3.
//!
//! The paper synthesizes FDMAX with Synopsys Design Compiler (SAED 32 nm)
//! and reports per-component area and power. We replace synthesis with a
//! structural model: per-unit constants (per PE, per FIFO entry, per SRAM
//! bank) calibrated so the default 8x8 / 64-entry / 32-bank configuration
//! reproduces Table 3 exactly, with linear scaling in unit counts and
//! first-order technology/frequency scaling for other configurations —
//! which is what the scalability study (Fig. 9) needs.

use crate::energy::TechnologyNode;
use core::fmt;

// Calibration constants, all at SAED 32 nm and 200 MHz, derived from the
// paper's Table 3 by dividing each component figure by its unit count.
const PE_AREA_MM2: f64 = 0.047 / 64.0;
const PE_POWER_MW: f64 = 293.04 / 64.0;
const CTRL_AREA_MM2_PER_PE: f64 = 0.020 / 64.0;
const CTRL_POWER_MW_PER_PE: f64 = 18.72 / 64.0;
const FIFO_AREA_MM2_PER_ENTRY: f64 = 0.10 / 512.0;
const NFIFO_POWER_MW_PER_ENTRY: f64 = 142.90 / 512.0;
const PFIFO_POWER_MW_PER_ENTRY: f64 = 142.20 / 512.0;
const BUFFER_AREA_MM2_PER_BANK: f64 = 0.24 / 32.0;
const CURBUF_POWER_MW_PER_BANK: f64 = 373.61 / 32.0;
const OFFBUF_POWER_MW_PER_BANK: f64 = 369.25 / 32.0;
const NEXTBUF_POWER_MW_PER_BANK: f64 = 371.55 / 32.0;

/// Structural parameters of one FDMAX instance.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct LayoutParams {
    /// PE array rows.
    pub pe_rows: usize,
    /// PE array columns.
    pub pe_cols: usize,
    /// Number of nFIFOs (equals the number of pFIFOs).
    pub fifo_count: usize,
    /// Entries per FIFO.
    pub fifo_entries: usize,
    /// Banks per on-chip buffer (three buffers total).
    pub buffer_banks: usize,
    /// Technology node.
    pub node: TechnologyNode,
    /// Clock frequency in Hz (power scales linearly with it).
    pub clock_hz: f64,
}

impl LayoutParams {
    /// The paper's evaluated configuration (§6.1): 8x8 PEs, eight 64-entry
    /// nFIFOs and pFIFOs, 32-bank buffers, SAED 32 nm, 200 MHz.
    pub fn fdmax_default() -> Self {
        LayoutParams {
            pe_rows: 8,
            pe_cols: 8,
            fifo_count: 8,
            fifo_entries: 64,
            buffer_banks: 32,
            node: TechnologyNode::N32,
            clock_hz: 200e6,
        }
    }

    /// A square `s x s` variant of the default, FIFOs scaling with the
    /// array as in the Fig. 9 study.
    pub fn square(s: usize) -> Self {
        LayoutParams {
            pe_rows: s,
            pe_cols: s,
            fifo_count: s,
            ..Self::fdmax_default()
        }
    }

    /// Total PE count.
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }
}

impl Default for LayoutParams {
    fn default() -> Self {
        Self::fdmax_default()
    }
}

/// One row of the layout table.
#[derive(Clone, Debug, PartialEq)]
pub struct ComponentReport {
    /// Component name as in Table 3.
    pub name: &'static str,
    /// Human-readable size description.
    pub size: String,
    /// Area in mm².
    pub area_mm2: f64,
    /// Power in mW.
    pub power_mw: f64,
}

/// The full layout report (Table 3).
#[derive(Clone, Debug, PartialEq)]
pub struct LayoutReport {
    components: Vec<ComponentReport>,
}

impl LayoutReport {
    /// Builds the report for a configuration.
    ///
    /// # Panics
    ///
    /// Panics if any structural count is zero.
    pub fn new(params: &LayoutParams) -> Self {
        assert!(params.pe_count() > 0, "need at least one PE");
        assert!(
            params.fifo_count > 0 && params.fifo_entries > 0,
            "need FIFOs"
        );
        assert!(params.buffer_banks > 0, "need buffer banks");
        let area_scale = (params.node.nm / 32.0) * (params.node.nm / 32.0);
        let power_scale = params.node.scale_from(TechnologyNode::N32) * (params.clock_hz / 200e6);
        let pes = params.pe_count() as f64;
        let entries = (params.fifo_count * params.fifo_entries) as f64;
        let banks = params.buffer_banks as f64;

        let comp = |name: &'static str, size: String, area: f64, power: f64| ComponentReport {
            name,
            size,
            area_mm2: area * area_scale,
            power_mw: power * power_scale,
        };

        let components = vec![
            comp(
                "PE Array",
                format!("{}x{} PEs", params.pe_rows, params.pe_cols),
                pes * PE_AREA_MM2,
                pes * PE_POWER_MW,
            ),
            comp(
                "Buffer Controller",
                "-".to_string(),
                pes * CTRL_AREA_MM2_PER_PE,
                pes * CTRL_POWER_MW_PER_PE,
            ),
            comp(
                "nFIFO",
                format!("{}x{} entries", params.fifo_count, params.fifo_entries),
                entries * FIFO_AREA_MM2_PER_ENTRY,
                entries * NFIFO_POWER_MW_PER_ENTRY,
            ),
            comp(
                "pFIFO",
                format!("{}x{} entries", params.fifo_count, params.fifo_entries),
                entries * FIFO_AREA_MM2_PER_ENTRY,
                entries * PFIFO_POWER_MW_PER_ENTRY,
            ),
            comp(
                "CurBuffer",
                format!("{} KB", banks * 128.0 / 1024.0),
                banks * BUFFER_AREA_MM2_PER_BANK,
                banks * CURBUF_POWER_MW_PER_BANK,
            ),
            comp(
                "OffsetBuffer",
                format!("{} KB", banks * 128.0 / 1024.0),
                banks * BUFFER_AREA_MM2_PER_BANK,
                banks * OFFBUF_POWER_MW_PER_BANK,
            ),
            comp(
                "NextBuffer",
                format!("{} KB", banks * 128.0 / 1024.0),
                banks * BUFFER_AREA_MM2_PER_BANK,
                banks * NEXTBUF_POWER_MW_PER_BANK,
            ),
        ];
        LayoutReport { components }
    }

    /// The per-component rows.
    pub fn components(&self) -> &[ComponentReport] {
        &self.components
    }

    /// Total area in mm².
    pub fn total_area_mm2(&self) -> f64 {
        self.components.iter().map(|c| c.area_mm2).sum()
    }

    /// Total power in mW.
    pub fn total_power_mw(&self) -> f64 {
        self.components.iter().map(|c| c.power_mw).sum()
    }

    /// Energy in joules for running `seconds` at full activity.
    pub fn energy_joules(&self, seconds: f64) -> f64 {
        self.total_power_mw() * 1e-3 * seconds
    }

    /// Finds a component row by name.
    pub fn component(&self, name: &str) -> Option<&ComponentReport> {
        self.components.iter().find(|c| c.name == name)
    }
}

impl fmt::Display for LayoutReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ta = self.total_area_mm2();
        let tp = self.total_power_mw();
        writeln!(
            f,
            "{:<18} {:<16} {:>16} {:>18}",
            "Component", "Size", "Area (mm2)", "Power (mW)"
        )?;
        for c in &self.components {
            writeln!(
                f,
                "{:<18} {:<16} {:>7.3} ({:>5.2}%) {:>9.2} ({:>5.2}%)",
                c.name,
                c.size,
                c.area_mm2,
                100.0 * c.area_mm2 / ta,
                c.power_mw,
                100.0 * c.power_mw / tp
            )?;
        }
        write!(
            f,
            "{:<18} {:<16} {:>7.3} (100%)  {:>9.2} (100%)",
            "Total", "-", ta, tp
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_reproduces_table3_totals() {
        let r = LayoutReport::new(&LayoutParams::fdmax_default());
        assert!(
            (r.total_area_mm2() - 0.987).abs() < 0.01,
            "total area {} != ~0.99 mm2",
            r.total_area_mm2()
        );
        assert!(
            (r.total_power_mw() - 1711.27).abs() < 0.5,
            "total power {} != ~1711.27 mW",
            r.total_power_mw()
        );
    }

    #[test]
    fn default_reproduces_table3_components() {
        let r = LayoutReport::new(&LayoutParams::fdmax_default());
        let pe = r.component("PE Array").unwrap();
        assert!((pe.area_mm2 - 0.047).abs() < 1e-9);
        assert!((pe.power_mw - 293.04).abs() < 1e-9);
        let nf = r.component("nFIFO").unwrap();
        assert!((nf.area_mm2 - 0.10).abs() < 1e-9);
        assert!((nf.power_mw - 142.90).abs() < 1e-9);
        let cur = r.component("CurBuffer").unwrap();
        assert!((cur.area_mm2 - 0.24).abs() < 1e-9);
        assert!((cur.power_mw - 373.61).abs() < 1e-9);
        let ctl = r.component("Buffer Controller").unwrap();
        assert!((ctl.power_mw - 18.72).abs() < 1e-9);
    }

    #[test]
    fn buffers_dominate_area_and_power_as_in_the_paper() {
        // §7.1: the three buffers are 73.08% of area and 65.12% of power.
        let r = LayoutReport::new(&LayoutParams::fdmax_default());
        let buf_area: f64 = ["CurBuffer", "OffsetBuffer", "NextBuffer"]
            .iter()
            .map(|n| r.component(n).unwrap().area_mm2)
            .sum();
        let buf_power: f64 = ["CurBuffer", "OffsetBuffer", "NextBuffer"]
            .iter()
            .map(|n| r.component(n).unwrap().power_mw)
            .sum();
        let area_frac = buf_area / r.total_area_mm2();
        let power_frac = buf_power / r.total_power_mw();
        assert!(
            (area_frac - 0.7308).abs() < 0.01,
            "area fraction {area_frac}"
        );
        assert!(
            (power_frac - 0.6512).abs() < 0.01,
            "power fraction {power_frac}"
        );
    }

    #[test]
    fn pe_array_fraction_matches_paper() {
        // §7.1: PE array is 17.12% of power with 4.79% of area.
        let r = LayoutReport::new(&LayoutParams::fdmax_default());
        let pe = r.component("PE Array").unwrap();
        assert!((pe.power_mw / r.total_power_mw() - 0.1712).abs() < 0.005);
        assert!((pe.area_mm2 / r.total_area_mm2() - 0.0479).abs() < 0.005);
    }

    #[test]
    fn square_scaling_grows_pe_and_fifo_only() {
        let small = LayoutReport::new(&LayoutParams::square(4));
        let big = LayoutReport::new(&LayoutParams::square(12));
        let pe_ratio = big.component("PE Array").unwrap().area_mm2
            / small.component("PE Array").unwrap().area_mm2;
        assert!((pe_ratio - 9.0).abs() < 1e-9, "PE area scales with count");
        // Buffers unchanged (same bank count).
        assert_eq!(
            big.component("CurBuffer").unwrap().area_mm2,
            small.component("CurBuffer").unwrap().area_mm2
        );
        let fifo_ratio =
            big.component("nFIFO").unwrap().power_mw / small.component("nFIFO").unwrap().power_mw;
        assert!((fifo_ratio - 3.0).abs() < 1e-9, "FIFO count scales with s");
    }

    #[test]
    fn frequency_scales_power_not_area() {
        let mut p = LayoutParams::fdmax_default();
        p.clock_hz = 400e6;
        let r2x = LayoutReport::new(&p);
        let r1x = LayoutReport::new(&LayoutParams::fdmax_default());
        assert!((r2x.total_power_mw() / r1x.total_power_mw() - 2.0).abs() < 1e-9);
        assert_eq!(r2x.total_area_mm2(), r1x.total_area_mm2());
    }

    #[test]
    fn energy_is_power_times_time() {
        let r = LayoutReport::new(&LayoutParams::fdmax_default());
        let e = r.energy_joules(2.0);
        assert!((e - r.total_power_mw() * 2e-3).abs() < 1e-12);
    }

    #[test]
    fn display_renders_table() {
        let s = LayoutReport::new(&LayoutParams::fdmax_default()).to_string();
        assert!(s.contains("PE Array"));
        assert!(s.contains("Total"));
        assert!(s.contains("NextBuffer"));
    }

    #[test]
    #[should_panic(expected = "need FIFOs")]
    fn zero_fifo_rejected() {
        let mut p = LayoutParams::fdmax_default();
        p.fifo_count = 0;
        let _ = LayoutReport::new(&p);
    }
}
