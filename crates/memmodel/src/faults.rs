//! Deterministic fault injection for the memory hierarchy.
//!
//! Long cycle-accurate solves stream billions of words through the
//! on-chip buffers and the DMA engine; real deployments of stencil
//! accelerators must survive transient upsets in both. This module
//! models three fault classes, all driven by one seeded campaign so any
//! run can be replayed bit-for-bit:
//!
//! * **SRAM single-bit upsets** in CurBuffer/NextBuffer words, with an
//!   optional parity (detect-only) or SECDED (correct-in-place) code
//!   charged at a modeled cycle cost per event;
//! * **transient DMA block-transfer failures**, retried with
//!   decorrelated-jitter backoff (each wait a seeded uniform draw in
//!   `[base, 3 * previous)`, capped); every retry re-pays the transfer
//!   plus the backoff wait;
//! * **FIFO overflow as backpressure** — handled in
//!   [`crate::fifo::Fifo::push_backpressure`], with the producer stall
//!   accounted instead of a hard error.
//!
//! The injector draws each fault class from an independent forked
//! [`DetRng`] stream, so adding draws at one site never perturbs the
//! schedule of another. Every injected fault is appended to an ordered
//! trace ([`FaultEvent`]) whose digest fingerprints the whole campaign.

use core::fmt;
use detrng::DetRng;

/// Cycle cost charged per SECDED in-place correction.
pub const ECC_CORRECT_CYCLES: u64 = 3;
/// Cycle cost charged per parity detection (the read is retried from a
/// known-good copy by the recovery machinery; the check itself is short).
pub const ECC_DETECT_CYCLES: u64 = 1;

/// Which modeled buffer an SRAM upset lands in.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultTarget {
    /// The `U^k` operand buffer.
    CurBuffer,
    /// The `U^{k+1}` result buffer.
    NextBuffer,
}

impl fmt::Display for FaultTarget {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultTarget::CurBuffer => f.write_str("CurBuffer"),
            FaultTarget::NextBuffer => f.write_str("NextBuffer"),
        }
    }
}

/// Error-protection scheme modeled on the on-chip buffers.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum EccMode {
    /// No protection: upsets corrupt data silently.
    #[default]
    None,
    /// Per-word parity: single-bit upsets are *detected* on read (the
    /// solver must recover, e.g. by rolling back to a checkpoint), at
    /// [`ECC_DETECT_CYCLES`] per detection.
    Parity,
    /// Single-error-correct / double-error-detect: single-bit upsets are
    /// corrected in place at [`ECC_CORRECT_CYCLES`] per correction.
    Secded,
}

impl fmt::Display for EccMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EccMode::None => f.write_str("none"),
            EccMode::Parity => f.write_str("parity"),
            EccMode::Secded => f.write_str("secded"),
        }
    }
}

/// What happened to one injected SRAM upset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FlipOutcome {
    /// No protection: the word is silently corrupted.
    Silent,
    /// Parity flagged the word; data stays corrupted until the solver
    /// recovers.
    Detected,
    /// SECDED corrected the word in place.
    Corrected,
}

/// Configuration of one seeded fault campaign.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultCampaign {
    /// Master seed; the whole fault schedule is a pure function of it.
    pub seed: u64,
    /// Expected SRAM upsets per iteration across the protected buffers
    /// (fractions are resolved by an extra Bernoulli draw).
    pub sram_flips_per_iteration: f64,
    /// Protection scheme on CurBuffer/NextBuffer.
    pub ecc: EccMode,
    /// Probability that any given DMA block transfer fails transiently.
    pub dma_failure_prob: f64,
    /// Retries before a transfer is declared permanently failed.
    pub max_dma_retries: u32,
    /// Base backoff wait. Each failed attempt waits a decorrelated-
    /// jitter draw: uniform in `[base, 3 * previous_wait)` from the DMA
    /// fault stream, capped at `base << 16` — so retry schedules grow
    /// roughly exponentially in expectation but never synchronize
    /// across concurrent engines the way a fixed `base << k` ladder
    /// does.
    pub dma_backoff_cycles: u64,
}

impl FaultCampaign {
    /// No faults at all; the simulator behaves bit-identically to a
    /// build without the resilience layer.
    pub fn disabled() -> Self {
        FaultCampaign {
            seed: 0,
            sram_flips_per_iteration: 0.0,
            ecc: EccMode::None,
            dma_failure_prob: 0.0,
            max_dma_retries: 0,
            dma_backoff_cycles: 0,
        }
    }

    /// A mild campaign: sparse upsets, occasional DMA hiccups.
    pub fn light(seed: u64) -> Self {
        FaultCampaign {
            seed,
            sram_flips_per_iteration: 0.05,
            ecc: EccMode::None,
            dma_failure_prob: 0.001,
            max_dma_retries: 4,
            dma_backoff_cycles: 16,
        }
    }

    /// A harsh campaign: frequent upsets and flaky DMA, parity detection
    /// so the solver sees the corruption.
    pub fn harsh(seed: u64) -> Self {
        FaultCampaign {
            seed,
            sram_flips_per_iteration: 1.5,
            ecc: EccMode::Parity,
            dma_failure_prob: 0.05,
            max_dma_retries: 6,
            dma_backoff_cycles: 32,
        }
    }

    /// `true` when any fault class can actually fire.
    pub fn is_active(&self) -> bool {
        self.sram_flips_per_iteration > 0.0 || self.dma_failure_prob > 0.0
    }

    /// Derives the campaign for one job of a multi-job run: same fault
    /// rates and protection, but a seed mixed (splitmix64) from the
    /// campaign seed and `job_id`. Every job draws an independent,
    /// replayable fault schedule, and re-running the service with the
    /// same master seed reproduces every job's trace bit-for-bit.
    #[must_use]
    pub fn for_job(&self, job_id: u64) -> FaultCampaign {
        let mut z = self.seed ^ job_id.wrapping_mul(0x9e37_79b9_7f4a_7c15);
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        FaultCampaign { seed: z, ..*self }
    }
}

impl Default for FaultCampaign {
    fn default() -> Self {
        Self::disabled()
    }
}

impl fmt::Display for FaultCampaign {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "campaign(seed {}, {} flips/iter, ecc {}, dma p={} x{} retries)",
            self.seed,
            self.sram_flips_per_iteration,
            self.ecc,
            self.dma_failure_prob,
            self.max_dma_retries
        )
    }
}

/// One planned SRAM upset.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SramFlip {
    /// Buffer hit by the upset.
    pub target: FaultTarget,
    /// Element index (row-major word address within the grid image).
    pub index: usize,
    /// Which of the 32 bits flips.
    pub bit: u32,
    /// Outcome under the campaign's ECC mode.
    pub outcome: FlipOutcome,
}

/// Result of pushing one DMA block transfer through the fault model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DmaAttemptOutcome {
    /// Retries performed (0 = first attempt succeeded).
    pub retries: u32,
    /// Extra cycles beyond the clean transfer: backoff waits plus one
    /// re-transfer per retry.
    pub extra_cycles: u64,
    /// `false` when the transfer still failed after `max_dma_retries`.
    pub succeeded: bool,
}

/// One entry of the ordered campaign trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// An SRAM upset was injected.
    SramUpset {
        /// Iteration (1-based solve iteration; 0 = boot/drain phases).
        iteration: u64,
        /// The planned flip.
        flip: SramFlip,
    },
    /// A DMA transfer needed retries (or gave up).
    DmaTransferFaults {
        /// Iteration (0 = boot/drain phases).
        iteration: u64,
        /// The retry outcome.
        outcome: DmaAttemptOutcome,
    },
}

/// The seeded fault injector: owns the campaign RNG streams and the
/// replayable trace.
#[derive(Clone, Debug)]
pub struct FaultInjector {
    campaign: FaultCampaign,
    rng_sram: DetRng,
    rng_dma: DetRng,
    trace: Vec<FaultEvent>,
    iteration: u64,
}

impl FaultInjector {
    /// Creates an injector for `campaign`; per-site streams are forked
    /// from the master seed so the schedule of one fault class is
    /// independent of how often another class draws.
    pub fn new(campaign: FaultCampaign) -> Self {
        let mut master = DetRng::seed_from_u64(campaign.seed);
        let rng_sram = master.fork();
        let rng_dma = master.fork();
        FaultInjector {
            campaign,
            rng_sram,
            rng_dma,
            trace: Vec::new(),
            iteration: 0,
        }
    }

    /// The campaign this injector executes.
    pub fn campaign(&self) -> &FaultCampaign {
        &self.campaign
    }

    /// Marks the start of solve iteration `iteration` (1-based); fault
    /// events recorded until the next call are attributed to it.
    pub fn begin_iteration(&mut self, iteration: u64) {
        self.iteration = iteration;
    }

    /// Draws this iteration's SRAM upsets over a `rows x cols` grid
    /// image per buffer. Deterministic: same seed and call sequence,
    /// same flips. Records each flip in the trace.
    pub fn draw_sram_flips(&mut self, elements: usize) -> Vec<SramFlip> {
        if elements == 0 || self.campaign.sram_flips_per_iteration <= 0.0 {
            return Vec::new();
        }
        let lambda = self.campaign.sram_flips_per_iteration;
        let mut count = lambda.floor() as usize;
        if self.rng_sram.gen_bool(lambda.fract()) {
            count += 1;
        }
        let mut flips = Vec::with_capacity(count);
        for _ in 0..count {
            let target = if self.rng_sram.gen_bool(0.5) {
                FaultTarget::CurBuffer
            } else {
                FaultTarget::NextBuffer
            };
            let flip = SramFlip {
                target,
                index: self.rng_sram.gen_range(0, elements),
                bit: self.rng_sram.gen_bit32(),
                outcome: match self.campaign.ecc {
                    EccMode::None => FlipOutcome::Silent,
                    EccMode::Parity => FlipOutcome::Detected,
                    EccMode::Secded => FlipOutcome::Corrected,
                },
            };
            self.trace.push(FaultEvent::SramUpset {
                iteration: self.iteration,
                flip,
            });
            flips.push(flip);
        }
        flips
    }

    /// Pushes one DMA block transfer of `transfer_cycles` through the
    /// fault model: each failed attempt waits a decorrelated-jitter
    /// backoff (uniform in `[base, 3 * previous)` from the DMA stream,
    /// capped at `base << 16`) and re-pays the transfer. Records the
    /// event when any retry happened.
    pub fn draw_dma_transfer(&mut self, transfer_cycles: u64) -> DmaAttemptOutcome {
        let p = self.campaign.dma_failure_prob;
        if p <= 0.0 {
            return DmaAttemptOutcome {
                succeeded: true,
                ..DmaAttemptOutcome::default()
            };
        }
        let mut out = DmaAttemptOutcome {
            succeeded: true,
            ..DmaAttemptOutcome::default()
        };
        let base = self.campaign.dma_backoff_cycles;
        let cap = base.saturating_shl(16);
        let mut prev = base;
        while self.rng_dma.gen_bool(p) {
            if out.retries >= self.campaign.max_dma_retries {
                out.succeeded = false;
                break;
            }
            let backoff = if base == 0 {
                0
            } else {
                // AWS-style decorrelated jitter on the same seeded
                // stream as the failure draws: replay stays bit-exact.
                let hi = prev.saturating_mul(3).min(cap).max(base + 1);
                base + self.rng_dma.gen_range(0, (hi - base) as usize) as u64
            };
            prev = backoff.max(base);
            out.extra_cycles += backoff + transfer_cycles;
            out.retries += 1;
        }
        if out.retries > 0 || !out.succeeded {
            self.trace.push(FaultEvent::DmaTransferFaults {
                iteration: self.iteration,
                outcome: out,
            });
        }
        out
    }

    /// The ordered trace of every injected fault so far.
    pub fn trace(&self) -> &[FaultEvent] {
        &self.trace
    }

    /// FNV-1a fingerprint of the whole trace — equal digests mean
    /// bit-identical fault schedules (the deterministic-replay
    /// contract).
    pub fn trace_digest(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x1_0000_0000_01b3);
            }
        };
        for ev in &self.trace {
            match ev {
                FaultEvent::SramUpset { iteration, flip } => {
                    eat(1);
                    eat(*iteration);
                    eat(matches!(flip.target, FaultTarget::NextBuffer) as u64);
                    eat(flip.index as u64);
                    eat(flip.bit as u64);
                    eat(match flip.outcome {
                        FlipOutcome::Silent => 0,
                        FlipOutcome::Detected => 1,
                        FlipOutcome::Corrected => 2,
                    });
                }
                FaultEvent::DmaTransferFaults { iteration, outcome } => {
                    eat(2);
                    eat(*iteration);
                    eat(outcome.retries as u64);
                    eat(outcome.extra_cycles);
                    eat(outcome.succeeded as u64);
                }
            }
        }
        h
    }
}

/// `u64::checked_shl` with saturation to a large-but-finite backoff.
trait SaturatingShl {
    fn saturating_shl(self, k: u32) -> u64;
}

impl SaturatingShl for u64 {
    fn saturating_shl(self, k: u32) -> u64 {
        self.checked_shl(k).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_campaign_draws_nothing() {
        let mut inj = FaultInjector::new(FaultCampaign::disabled());
        assert!(!inj.campaign().is_active());
        assert!(inj.draw_sram_flips(1000).is_empty());
        let dma = inj.draw_dma_transfer(100);
        assert!(dma.succeeded);
        assert_eq!(dma.retries, 0);
        assert_eq!(dma.extra_cycles, 0);
        assert!(inj.trace().is_empty());
    }

    #[test]
    fn same_seed_same_trace() {
        let mk = || {
            let mut inj = FaultInjector::new(FaultCampaign::harsh(1234));
            for it in 1..=50u64 {
                inj.begin_iteration(it);
                inj.draw_sram_flips(4096);
                inj.draw_dma_transfer(500);
            }
            inj
        };
        let a = mk();
        let b = mk();
        assert_eq!(a.trace(), b.trace());
        assert_eq!(a.trace_digest(), b.trace_digest());
        assert!(!a.trace().is_empty(), "harsh campaign actually fires");
    }

    #[test]
    fn different_seeds_differ() {
        let run = |seed| {
            let mut inj = FaultInjector::new(FaultCampaign::harsh(seed));
            inj.begin_iteration(1);
            inj.draw_sram_flips(4096);
            inj.trace_digest()
        };
        assert_ne!(run(1), run(2));
    }

    #[test]
    fn flip_rate_matches_expectation() {
        let mut inj = FaultInjector::new(FaultCampaign {
            sram_flips_per_iteration: 0.5,
            ..FaultCampaign::harsh(7)
        });
        let mut total = 0usize;
        for it in 0..10_000u64 {
            inj.begin_iteration(it);
            total += inj.draw_sram_flips(100).len();
        }
        assert!((3_500..6_500).contains(&total), "≈0.5/iter: got {total}");
    }

    #[test]
    fn fractional_and_integral_rates_combine() {
        let mut inj = FaultInjector::new(FaultCampaign {
            sram_flips_per_iteration: 2.0,
            ..FaultCampaign::harsh(9)
        });
        inj.begin_iteration(1);
        assert_eq!(inj.draw_sram_flips(64).len(), 2, "integral rate is exact");
    }

    #[test]
    fn ecc_mode_sets_outcome() {
        for (ecc, want) in [
            (EccMode::None, FlipOutcome::Silent),
            (EccMode::Parity, FlipOutcome::Detected),
            (EccMode::Secded, FlipOutcome::Corrected),
        ] {
            let mut inj = FaultInjector::new(FaultCampaign {
                sram_flips_per_iteration: 1.0,
                ecc,
                ..FaultCampaign::harsh(3)
            });
            inj.begin_iteration(1);
            let flips = inj.draw_sram_flips(128);
            assert!(flips.iter().all(|f| f.outcome == want));
            assert!(flips.iter().all(|f| f.index < 128 && f.bit < 32));
        }
    }

    #[test]
    fn dma_backoff_is_decorrelated_jitter_within_bounds() {
        // Force failures: p = 1 means every attempt fails until the
        // retry cap, then the transfer is declared failed.
        let campaign = FaultCampaign {
            dma_failure_prob: 1.0,
            max_dma_retries: 3,
            dma_backoff_cycles: 10,
            sram_flips_per_iteration: 0.0,
            ecc: EccMode::None,
            seed: 5,
        };
        let mut inj = FaultInjector::new(campaign);
        let out = inj.draw_dma_transfer(100);
        assert!(!out.succeeded);
        assert_eq!(out.retries, 3);
        assert_eq!(inj.trace().len(), 1);
        // Each wait is a uniform draw in [base, min(cap, 3*prev)), so
        // with base 10 the three waits are bounded by [10, 30), [10,
        // 90), [10, 270); every retry also re-pays the 100-cycle
        // transfer.
        let waits = out.extra_cycles - 3 * 100;
        assert!(
            (30..3 * 100).contains(&waits),
            "waits out of range: {waits}"
        );
        // The exact schedule is a pure function of the seed: replaying
        // the campaign reproduces it bit-for-bit...
        let replay = FaultInjector::new(campaign).draw_dma_transfer(100);
        assert_eq!(replay, out);
        // ...and a different seed decorrelates it (no `base << k`
        // lockstep between concurrently retrying engines).
        let other = FaultInjector::new(FaultCampaign {
            seed: 6,
            ..campaign
        })
        .draw_dma_transfer(100);
        assert_ne!(other.extra_cycles, out.extra_cycles);
    }

    #[test]
    fn dma_low_probability_mostly_clean() {
        let mut inj = FaultInjector::new(FaultCampaign {
            dma_failure_prob: 0.01,
            max_dma_retries: 4,
            dma_backoff_cycles: 8,
            sram_flips_per_iteration: 0.0,
            ecc: EccMode::None,
            seed: 21,
        });
        let retried = (0..1000)
            .filter(|_| inj.draw_dma_transfer(50).retries > 0)
            .count();
        assert!(retried < 40, "≈1% failure rate: got {retried}");
    }

    #[test]
    fn per_job_campaigns_are_distinct_and_reproducible() {
        let master = FaultCampaign::harsh(77);
        let a = master.for_job(0);
        let b = master.for_job(1);
        assert_ne!(a.seed, b.seed);
        assert_ne!(a.seed, master.seed, "job 0 is mixed too, not passthrough");
        assert_eq!(a, master.for_job(0), "pure function of (seed, job id)");
        // Rates and protection are inherited unchanged.
        assert_eq!(a.ecc, master.ecc);
        assert_eq!(a.sram_flips_per_iteration, master.sram_flips_per_iteration);
        assert_eq!(a.dma_failure_prob, master.dma_failure_prob);
        // Different master seeds shuffle every job's schedule.
        assert_ne!(FaultCampaign::harsh(78).for_job(0).seed, a.seed);
        // The traces drawn from sibling jobs actually differ.
        let digest = |c: FaultCampaign| {
            let mut inj = FaultInjector::new(c);
            inj.begin_iteration(1);
            inj.draw_sram_flips(4096);
            inj.trace_digest()
        };
        assert_ne!(digest(a), digest(b));
    }

    #[test]
    fn campaign_display_and_presets() {
        assert!(FaultCampaign::light(1).is_active());
        assert!(FaultCampaign::harsh(1).is_active());
        let s = FaultCampaign::harsh(42).to_string();
        assert!(s.contains("seed 42"));
        assert!(s.contains("parity"));
        assert_eq!(FaultCampaign::default(), FaultCampaign::disabled());
    }
}
