//! Simplified CACTI-like SRAM/FIFO estimator.
//!
//! The paper uses CACTI 6.5 "to estimate the energy and area of SRAMs and
//! FIFOs" (§6.2). We replace it with first-order structural formulas:
//!
//! * array area = banks x (periphery overhead + bits x cell area),
//! * access energy grows with the square root of the searched capacity,
//! * both scale with the technology node.
//!
//! The constants are calibrated so the paper's default structures (a 4 KB
//! 32-bank buffer, a 64-entry FIFO, both at SAED 32 nm) land on the
//! Table 3 figures; everything else is extrapolation along the formulas.

use crate::energy::TechnologyNode;
use core::fmt;

/// 6T SRAM cell area at 32 nm, in mm² per bit.
const CELL_AREA_32NM_MM2: f64 = 0.17e-6;
/// Per-bank periphery (decoder, sense amps, mux) at 32 nm, in mm².
/// Calibrated: 32 banks x (ovh + 1024 bits x cell) = 0.24 mm² (Table 3).
const BANK_OVERHEAD_32NM_MM2: f64 = 0.24 / 32.0 - 1024.0 * CELL_AREA_32NM_MM2;
/// Register-file style FIFO entry (32-bit register + control) at 32 nm,
/// in mm². Calibrated: 512 entries = 0.10 mm² (Table 3).
const FIFO_ENTRY_32NM_MM2: f64 = 0.10 / 512.0;
/// Read energy of a 4 KB buffer at 32 nm, in pJ per 32-bit access.
const SRAM_4KB_ACCESS_32NM_PJ: f64 = 3.4;
/// FIFO access energy at 32 nm, in pJ per 32-bit push/pop.
const FIFO_ACCESS_32NM_PJ: f64 = 0.8;

/// Area and per-access energy estimate for one storage structure.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StorageEstimate {
    /// Silicon area in mm².
    pub area_mm2: f64,
    /// Energy per 32-bit access in picojoules.
    pub access_pj: f64,
}

impl fmt::Display for StorageEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.4} mm2, {:.2} pJ/access",
            self.area_mm2, self.access_pj
        )
    }
}

/// Estimates a banked SRAM buffer.
///
/// # Panics
///
/// Panics if `banks` or `bytes_per_bank` is zero.
pub fn sram_estimate(banks: usize, bytes_per_bank: usize, node: TechnologyNode) -> StorageEstimate {
    assert!(banks > 0 && bytes_per_bank > 0, "empty SRAM");
    let area_scale = (node.nm / 32.0) * (node.nm / 32.0);
    let energy_scale = node.scale_from(TechnologyNode::N32);
    let bits = (bytes_per_bank * 8) as f64;
    let area = banks as f64 * (BANK_OVERHEAD_32NM_MM2 + bits * CELL_AREA_32NM_MM2) * area_scale;
    // Access energy: only one bank activates; grows ~sqrt(bank capacity).
    let access = SRAM_4KB_ACCESS_32NM_PJ * (bytes_per_bank as f64 / 128.0).sqrt() * energy_scale;
    StorageEstimate {
        area_mm2: area,
        access_pj: access,
    }
}

/// Estimates a register-based FIFO of 32-bit entries.
///
/// # Panics
///
/// Panics if `entries` is zero.
pub fn fifo_estimate(entries: usize, node: TechnologyNode) -> StorageEstimate {
    assert!(entries > 0, "empty FIFO");
    let area_scale = (node.nm / 32.0) * (node.nm / 32.0);
    let energy_scale = node.scale_from(TechnologyNode::N32);
    StorageEstimate {
        area_mm2: entries as f64 * FIFO_ENTRY_32NM_MM2 * area_scale,
        access_pj: FIFO_ACCESS_32NM_PJ * (entries as f64 / 64.0).sqrt() * energy_scale,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_buffer_matches_table3_area() {
        // 32 banks x 128 B = 4 KB -> 0.24 mm² at 32 nm (calibration point).
        let e = sram_estimate(32, 128, TechnologyNode::N32);
        assert!((e.area_mm2 - 0.24).abs() < 1e-9);
        assert!((e.access_pj - 3.4).abs() < 1e-9);
    }

    #[test]
    fn default_fifo_matches_table3_area() {
        // One 64-entry FIFO: 0.10 mm² / 8 per family member.
        let e = fifo_estimate(64, TechnologyNode::N32);
        assert!((e.area_mm2 - 0.0125).abs() < 1e-9);
        // Eight of them = the Table 3 family figure.
        assert!((8.0 * e.area_mm2 - 0.10).abs() < 1e-9);
    }

    #[test]
    fn area_scales_with_banks_and_capacity() {
        let small = sram_estimate(8, 128, TechnologyNode::N32);
        let wide = sram_estimate(64, 128, TechnologyNode::N32);
        assert!((wide.area_mm2 / small.area_mm2 - 8.0).abs() < 1e-9);
        let deep = sram_estimate(8, 512, TechnologyNode::N32);
        assert!(deep.area_mm2 > small.area_mm2);
        assert!(
            deep.access_pj > small.access_pj,
            "bigger banks cost more energy"
        );
    }

    #[test]
    fn node_scaling_shrinks_area_and_energy() {
        let at32 = sram_estimate(32, 128, TechnologyNode::N32);
        let at45 = sram_estimate(32, 128, TechnologyNode::N45);
        assert!(at45.area_mm2 > at32.area_mm2 * 1.5);
        assert!(at45.access_pj > at32.access_pj);
        let f32n = fifo_estimate(64, TechnologyNode::N32);
        let f45n = fifo_estimate(64, TechnologyNode::N45);
        assert!(f45n.area_mm2 > f32n.area_mm2);
    }

    #[test]
    #[should_panic(expected = "empty SRAM")]
    fn zero_banks_rejected() {
        let _ = sram_estimate(0, 128, TechnologyNode::N32);
    }

    #[test]
    fn display_shows_units() {
        let e = fifo_estimate(64, TechnologyNode::N32);
        assert!(e.to_string().contains("mm2"));
    }
}
