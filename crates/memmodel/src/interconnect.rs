//! Inter-PE interconnect model.
//!
//! The paper repeatedly claims the chained PE array has "negligible
//! interconnection overhead" (§1, §7.2) because every PE talks only to
//! its two neighbours over short point-to-point wires — no routers, no
//! arbitration. This module quantifies that claim: wire area and per-hop
//! energy for the nearest-neighbour chain, next to what a generic
//! mesh `NoC` (router per PE) would cost for the same traffic.

use crate::energy::TechnologyNode;
use core::fmt;

/// Wire energy at 32 nm, pJ per bit per millimetre.
const WIRE_PJ_PER_BIT_MM_32NM: f64 = 0.08;
/// Wire area (pitch + spacing + repeaters) at 32 nm, mm² per bit per mm.
const WIRE_AREA_MM2_PER_BIT_MM_32NM: f64 = 0.4e-6;
/// A small mesh router's energy per 32-bit flit hop at 32 nm, pJ
/// (buffering + crossbar + arbitration).
const ROUTER_PJ_PER_HOP_32NM: f64 = 0.9;
/// A small mesh router's area at 32 nm, mm².
const ROUTER_AREA_MM2_32NM: f64 = 0.004;

/// Estimated cost of one interconnect style for a PE array.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct InterconnectEstimate {
    /// Total wiring/router area in mm².
    pub area_mm2: f64,
    /// Energy per 32-bit neighbour transfer in picojoules.
    pub energy_per_transfer_pj: f64,
}

impl fmt::Display for InterconnectEstimate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.5} mm2, {:.3} pJ/transfer",
            self.area_mm2, self.energy_per_transfer_pj
        )
    }
}

/// PE pitch (edge length) in millimetres, from the per-PE area of the
/// calibrated layout model.
pub fn pe_pitch_mm() -> f64 {
    (0.047f64 / 64.0).sqrt()
}

/// The FDMAX chain: each adjacent PE pair is connected by two 32-bit
/// point-to-point buses (leftward and rightward partials), one PE pitch
/// long. Border PEs additionally reach the FIFO blocks (counted as one
/// extra pitch per chain end).
pub fn chain_estimate(
    pe_count: usize,
    subarrays: usize,
    node: TechnologyNode,
) -> InterconnectEstimate {
    assert!(pe_count > 0 && subarrays > 0, "empty interconnect");
    let scale_e = node.scale_from(TechnologyNode::N32);
    let scale_a = (node.nm / 32.0) * (node.nm / 32.0);
    let pitch = pe_pitch_mm();
    let links = 2.0 * (pe_count.saturating_sub(subarrays)) as f64 + 2.0 * subarrays as f64;
    let wire_mm = links * pitch * 32.0; // bit-millimetres
    InterconnectEstimate {
        area_mm2: wire_mm * WIRE_AREA_MM2_PER_BIT_MM_32NM * scale_a,
        energy_per_transfer_pj: 32.0 * pitch * WIRE_PJ_PER_BIT_MM_32NM * scale_e,
    }
}

/// A generic mesh `NoC` for the same array: one router per PE plus the
/// links; every neighbour transfer pays a router traversal.
pub fn mesh_estimate(pe_count: usize, node: TechnologyNode) -> InterconnectEstimate {
    assert!(pe_count > 0, "empty interconnect");
    let scale_e = node.scale_from(TechnologyNode::N32);
    let scale_a = (node.nm / 32.0) * (node.nm / 32.0);
    let pitch = pe_pitch_mm();
    let side = (pe_count as f64).sqrt().ceil();
    let links = 2.0 * side * (side - 1.0) * 2.0; // bidirectional mesh links
    let wire_mm = links * pitch * 32.0;
    InterconnectEstimate {
        area_mm2: (pe_count as f64 * ROUTER_AREA_MM2_32NM
            + wire_mm * WIRE_AREA_MM2_PER_BIT_MM_32NM)
            * scale_a,
        energy_per_transfer_pj: (ROUTER_PJ_PER_HOP_32NM + 32.0 * pitch * WIRE_PJ_PER_BIT_MM_32NM)
            * scale_e,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_negligible_next_to_the_design() {
        // The §7.2 claim, quantified: the 8x8 chain's wiring is well
        // under 1% of the 0.99 mm² design.
        let e = chain_estimate(64, 1, TechnologyNode::N32);
        assert!(
            e.area_mm2 < 0.01 * 0.99,
            "chain area {:.5} mm2 should be <1% of the design",
            e.area_mm2
        );
        // Per-transfer energy well under one FP32 addition (~0.6 pJ at
        // 32 nm).
        assert!(e.energy_per_transfer_pj < 0.6);
    }

    #[test]
    fn mesh_costs_an_order_of_magnitude_more() {
        let chain = chain_estimate(64, 1, TechnologyNode::N32);
        let mesh = mesh_estimate(64, TechnologyNode::N32);
        assert!(mesh.area_mm2 > 10.0 * chain.area_mm2);
        assert!(mesh.energy_per_transfer_pj > 5.0 * chain.energy_per_transfer_pj);
    }

    #[test]
    fn decomposition_barely_changes_the_chain() {
        // Splitting into subarrays removes inter-chain links but adds
        // FIFO taps: the totals stay within a few percent.
        let mono = chain_estimate(64, 1, TechnologyNode::N32);
        let split = chain_estimate(64, 8, TechnologyNode::N32);
        let ratio = split.area_mm2 / mono.area_mm2;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn scales_with_pe_count_and_node() {
        let small = chain_estimate(16, 1, TechnologyNode::N32);
        let big = chain_estimate(144, 1, TechnologyNode::N32);
        assert!(big.area_mm2 > 5.0 * small.area_mm2);
        let old = chain_estimate(64, 1, TechnologyNode::N45);
        let new = chain_estimate(64, 1, TechnologyNode::N32);
        assert!(old.area_mm2 > new.area_mm2);
        assert!(old.energy_per_transfer_pj > new.energy_per_transfer_pj);
    }

    #[test]
    fn pitch_matches_the_layout_calibration() {
        // sqrt(0.047/64) ~ 27 um.
        let p = pe_pitch_mm();
        assert!((p - 0.0271).abs() < 0.001, "pitch {p}");
    }

    #[test]
    fn display_shows_units() {
        let e = chain_estimate(64, 1, TechnologyNode::N32);
        assert!(e.to_string().contains("pJ/transfer"));
    }
}
