//! Off-chip DRAM (HBM) bandwidth model.
//!
//! The paper's default configuration attaches HBM with 128 GB/s to a
//! 200 MHz accelerator clock, i.e. 160 four-byte elements per cycle
//! (§6.1). The evaluation sweeps bandwidth from 16 to 256 GB/s (Fig. 9a).
//! [`DramModel`] converts between bytes, elements and accelerator cycles,
//! which is all the timing model needs: HBM's internal burst behaviour is
//! abstracted into the sustained-bandwidth figure, exactly as the paper
//! does.

use core::fmt;

/// Sustained-bandwidth DRAM model tied to an accelerator clock.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DramModel {
    bandwidth_bytes_per_s: f64,
    clock_hz: f64,
    capacity_bytes: u64,
}

/// Default modeled DRAM capacity: one 4 GiB HBM stack.
const DEFAULT_CAPACITY_BYTES: u64 = 4 * 1024 * 1024 * 1024;

impl DramModel {
    /// The paper's default: 128 GB/s HBM at a 200 MHz accelerator clock.
    pub fn hbm_128() -> Self {
        DramModel::new(128.0, 200e6)
    }

    /// Creates a model from bandwidth in GB/s (decimal: 1 GB = 1e9 bytes)
    /// and the accelerator clock in Hz, with the default 4 GiB capacity.
    ///
    /// # Panics
    ///
    /// Panics unless both arguments are positive and finite.
    pub fn new(bandwidth_gb_s: f64, clock_hz: f64) -> Self {
        assert!(
            bandwidth_gb_s > 0.0 && bandwidth_gb_s.is_finite(),
            "bandwidth must be positive"
        );
        assert!(
            clock_hz > 0.0 && clock_hz.is_finite(),
            "clock must be positive"
        );
        DramModel {
            bandwidth_bytes_per_s: bandwidth_gb_s * 1e9,
            clock_hz,
            capacity_bytes: DEFAULT_CAPACITY_BYTES,
        }
    }

    /// Replaces the modeled capacity (bytes of off-chip storage the
    /// accelerator can address).
    ///
    /// # Panics
    ///
    /// Panics when `capacity_bytes` is zero.
    #[must_use]
    pub fn with_capacity_bytes(mut self, capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "capacity must be positive");
        self.capacity_bytes = capacity_bytes;
        self
    }

    /// Modeled off-chip capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bandwidth in GB/s.
    pub fn bandwidth_gb_s(&self) -> f64 {
        self.bandwidth_bytes_per_s / 1e9
    }

    /// Accelerator clock in Hz.
    pub fn clock_hz(&self) -> f64 {
        self.clock_hz
    }

    /// Four-byte elements deliverable per accelerator cycle at full
    /// bandwidth utilization — the paper's "160" for the default config.
    pub fn elements_per_cycle(&self) -> f64 {
        self.bandwidth_bytes_per_s / self.clock_hz / 4.0
    }

    /// Minimum whole cycles to move `elements` four-byte elements.
    pub fn cycles_for_elements(&self, elements: u64) -> u64 {
        (elements as f64 / self.elements_per_cycle()).ceil() as u64
    }

    /// Minimum whole cycles to move `elements` elements of
    /// `bytes_per_element` bytes each — the generalization of
    /// [`cycles_for_elements`](Self::cycles_for_elements) the solve-plan
    /// analyzer uses to cost the f64 Krylov rung (8-byte elements halve
    /// the per-cycle element rate).
    pub fn cycles_for_sized_elements(&self, elements: u64, bytes_per_element: u64) -> u64 {
        let bytes_per_cycle = self.bandwidth_bytes_per_s / self.clock_hz;
        ((elements * bytes_per_element) as f64 / bytes_per_cycle).ceil() as u64
    }

    /// Time in seconds to move `bytes` at sustained bandwidth.
    pub fn seconds_for_bytes(&self, bytes: u64) -> f64 {
        bytes as f64 / self.bandwidth_bytes_per_s
    }

    /// Converts a cycle count at this model's clock into seconds.
    pub fn cycles_to_seconds(&self, cycles: u64) -> f64 {
        cycles as f64 / self.clock_hz
    }
}

impl fmt::Display for DramModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{:.0} GB/s @ {:.0} MHz ({:.0} elem/cycle)",
            self.bandwidth_gb_s(),
            self.clock_hz / 1e6,
            self.elements_per_cycle()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_is_160_elements_per_cycle() {
        let d = DramModel::hbm_128();
        assert!((d.elements_per_cycle() - 160.0).abs() < 1e-9);
        assert_eq!(d.bandwidth_gb_s(), 128.0);
        assert_eq!(d.clock_hz(), 200e6);
    }

    #[test]
    fn cycles_for_elements_rounds_up() {
        let d = DramModel::hbm_128();
        assert_eq!(d.cycles_for_elements(0), 0);
        assert_eq!(d.cycles_for_elements(1), 1);
        assert_eq!(d.cycles_for_elements(160), 1);
        assert_eq!(d.cycles_for_elements(161), 2);
        assert_eq!(d.cycles_for_elements(1600), 10);
    }

    #[test]
    fn seconds_conversions() {
        let d = DramModel::hbm_128();
        assert!((d.seconds_for_bytes(128_000_000_000) - 1.0).abs() < 1e-12);
        assert!((d.cycles_to_seconds(200_000_000) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_sweep_scales_linearly() {
        let lo = DramModel::new(16.0, 200e6);
        let hi = DramModel::new(256.0, 200e6);
        assert!((hi.elements_per_cycle() / lo.elements_per_cycle() - 16.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_bandwidth() {
        let _ = DramModel::new(0.0, 200e6);
    }

    #[test]
    fn display_mentions_bandwidth() {
        assert!(DramModel::hbm_128().to_string().contains("128"));
    }

    #[test]
    fn capacity_defaults_to_4_gib_and_is_overridable() {
        let d = DramModel::hbm_128();
        assert_eq!(d.capacity_bytes(), 4 * 1024 * 1024 * 1024);
        let small = d.with_capacity_bytes(1024);
        assert_eq!(small.capacity_bytes(), 1024);
        // Bandwidth/clock are untouched by the capacity override.
        assert_eq!(small.bandwidth_gb_s(), d.bandwidth_gb_s());
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn rejects_zero_capacity() {
        let _ = DramModel::hbm_128().with_capacity_bytes(0);
    }
}
