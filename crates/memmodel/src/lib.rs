//! Memory-hierarchy and energy/area models for the FDMAX reproduction.
//!
//! The paper's methodology (§6.2) combines three tools:
//!
//! * a cycle-accurate simulator that "counts the exact numbers of execution
//!   cycles, operations including multiplication/addition, and data
//!   accesses including DRAM read/write, on-chip SRAM read/write, and
//!   register file read/write" — our [`counters::EventCounters`] is that
//!   ledger;
//! * CACTI 6.5 for SRAM/FIFO/DRAM energy and area — replaced here by the
//!   simplified, calibrated estimator in [`cacti`];
//! * Synopsys synthesis at SAED 32 nm for logic area/power — replaced by
//!   the structural layout model in [`layout`], calibrated against the
//!   paper's Table 3 and parameterized so it extrapolates across PE-array
//!   sizes, FIFO depths and bank counts.
//!
//! Bandwidth-side behaviour (HBM streaming, SRAM bank conflicts, FIFO
//! occupancy, DMA double buffering) lives in [`dram`], [`sram`], [`fifo`]
//! and [`dma`]; [`energy`] converts an event ledger into joules with a
//! Horowitz-style per-operation energy table scaled between technology
//! nodes.

pub mod cacti;
pub mod counters;
pub mod dma;
pub mod dram;
pub mod energy;
pub mod faults;
pub mod fifo;
pub mod interconnect;
pub mod layout;
pub mod sram;

pub use counters::EventCounters;
pub use dram::DramModel;
pub use energy::{EnergyBreakdown, OpEnergies, TechnologyNode};
pub use faults::{EccMode, FaultCampaign, FaultEvent, FaultInjector, FaultTarget};
