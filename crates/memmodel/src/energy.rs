//! Per-operation energy accounting.
//!
//! The paper estimates baseline-accelerator energy by combining operation
//! counts "with the energy values reported in \[20\]" (Horowitz's classic
//! 45 nm energy table) and uses CACTI for its own SRAM/DRAM energy. We do
//! the same for every platform: [`OpEnergies`] holds picojoule costs per
//! event class, [`TechnologyNode`] scales on-chip costs between process
//! nodes, and [`EnergyBreakdown`] is the product with an
//! [`EventCounters`] ledger.

use crate::counters::EventCounters;
use core::fmt;

/// A CMOS technology node, used to scale on-chip energy between processes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TechnologyNode {
    /// Feature size in nanometres.
    pub nm: f64,
    /// Nominal supply voltage in volts.
    pub vdd: f64,
}

impl TechnologyNode {
    /// The 45 nm node of Horowitz's energy table.
    pub const N45: TechnologyNode = TechnologyNode { nm: 45.0, vdd: 1.1 };
    /// The SAED 32 nm node the paper synthesizes FDMAX in.
    pub const N32: TechnologyNode = TechnologyNode {
        nm: 32.0,
        vdd: 1.05,
    };
    /// 28 nm (Alrescha's node).
    pub const N28: TechnologyNode = TechnologyNode { nm: 28.0, vdd: 1.0 };
    /// 15 nm (`MemAccel`'s node).
    pub const N15: TechnologyNode = TechnologyNode { nm: 15.0, vdd: 0.8 };

    /// First-order dynamic-energy scaling factor from `from` to `self`:
    /// capacitance scales with feature size, energy with `C·V²`.
    pub fn scale_from(&self, from: TechnologyNode) -> f64 {
        (self.nm / from.nm) * (self.vdd * self.vdd) / (from.vdd * from.vdd)
    }
}

impl fmt::Display for TechnologyNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.0}nm @ {:.2}V", self.nm, self.vdd)
    }
}

/// Energy per event class, in picojoules.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpEnergies {
    /// One FP32 multiplication.
    pub fp32_mul: f64,
    /// One FP32 addition.
    pub fp32_add: f64,
    /// One 32-bit register-file access.
    pub rf_access: f64,
    /// One 32-bit FIFO push or pop.
    pub fifo_access: f64,
    /// One 32-bit access to a small (~4 KB) banked SRAM buffer.
    pub sram_access: f64,
    /// One 32-bit element transferred to/from off-chip DRAM.
    pub dram_access: f64,
}

impl OpEnergies {
    /// Horowitz's 45 nm figures (FP32 mul 3.7 pJ, FP32 add 0.9 pJ; small
    /// SRAM ~5 pJ per 32-bit word; DRAM ~640 pJ per 32-bit word), with
    /// register-file and FIFO costs interpolated for the structure sizes
    /// FDMAX uses.
    pub const HOROWITZ_45NM: OpEnergies = OpEnergies {
        fp32_mul: 3.7,
        fp32_add: 0.9,
        rf_access: 0.12,
        fifo_access: 1.2,
        sram_access: 5.0,
        dram_access: 640.0,
    };

    /// Scales every *on-chip* cost from `from` to `to`; DRAM energy is
    /// dominated by off-chip I/O and is left unscaled.
    pub fn scaled(&self, from: TechnologyNode, to: TechnologyNode) -> OpEnergies {
        let s = to.scale_from(from);
        OpEnergies {
            fp32_mul: self.fp32_mul * s,
            fp32_add: self.fp32_add * s,
            rf_access: self.rf_access * s,
            fifo_access: self.fifo_access * s,
            sram_access: self.sram_access * s,
            dram_access: self.dram_access,
        }
    }

    /// The table used for FDMAX itself: Horowitz 45 nm scaled to SAED 32 nm.
    pub fn fdmax_32nm() -> OpEnergies {
        OpEnergies::HOROWITZ_45NM.scaled(TechnologyNode::N45, TechnologyNode::N32)
    }
}

/// Energy attributed to each part of the machine, in picojoules.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct EnergyBreakdown {
    /// FP arithmetic.
    pub compute_pj: f64,
    /// Register files.
    pub rf_pj: f64,
    /// nFIFO/pFIFO structures.
    pub fifo_pj: f64,
    /// On-chip SRAM buffers.
    pub sram_pj: f64,
    /// Off-chip DRAM traffic.
    pub dram_pj: f64,
}

impl EnergyBreakdown {
    /// Computes the breakdown for an event ledger with the given per-op
    /// energies.
    pub fn from_counters(counters: &EventCounters, ops: &OpEnergies) -> Self {
        EnergyBreakdown {
            compute_pj: counters.fp_mul as f64 * ops.fp32_mul
                + counters.fp_add as f64 * ops.fp32_add,
            rf_pj: counters.rf_accesses() as f64 * ops.rf_access,
            fifo_pj: counters.fifo_ops() as f64 * ops.fifo_access,
            sram_pj: counters.sram_accesses() as f64 * ops.sram_access,
            dram_pj: counters.dram_traffic() as f64 * ops.dram_access,
        }
    }

    /// Total energy in picojoules.
    pub fn total_pj(&self) -> f64 {
        self.compute_pj + self.rf_pj + self.fifo_pj + self.sram_pj + self.dram_pj
    }

    /// Total energy in joules.
    pub fn total_joules(&self) -> f64 {
        self.total_pj() * 1e-12
    }

    /// Element-wise sum of two breakdowns.
    pub fn merged(&self, other: &EnergyBreakdown) -> EnergyBreakdown {
        EnergyBreakdown {
            compute_pj: self.compute_pj + other.compute_pj,
            rf_pj: self.rf_pj + other.rf_pj,
            fifo_pj: self.fifo_pj + other.fifo_pj,
            sram_pj: self.sram_pj + other.sram_pj,
            dram_pj: self.dram_pj + other.dram_pj,
        }
    }
}

impl fmt::Display for EnergyBreakdown {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "compute {:.3e} pJ | rf {:.3e} | fifo {:.3e} | sram {:.3e} | dram {:.3e} | total {:.6e} J",
            self.compute_pj,
            self.rf_pj,
            self.fifo_pj,
            self.sram_pj,
            self.dram_pj,
            self.total_joules()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_scaling_is_less_than_one_when_shrinking() {
        let s = TechnologyNode::N32.scale_from(TechnologyNode::N45);
        assert!(s > 0.5 && s < 0.75, "32nm/45nm scale {s} out of range");
        // Identity scaling.
        assert!((TechnologyNode::N45.scale_from(TechnologyNode::N45) - 1.0).abs() < 1e-12);
        // Growing node costs more.
        assert!(TechnologyNode::N45.scale_from(TechnologyNode::N32) > 1.0);
    }

    #[test]
    fn fdmax_table_scales_on_chip_only() {
        let base = OpEnergies::HOROWITZ_45NM;
        let scaled = OpEnergies::fdmax_32nm();
        assert!(scaled.fp32_mul < base.fp32_mul);
        assert!(scaled.sram_access < base.sram_access);
        assert_eq!(scaled.dram_access, base.dram_access, "DRAM unscaled");
    }

    #[test]
    fn mul_costs_more_than_add() {
        // The premise of the paper's computation-reuse argument.
        let e = OpEnergies::fdmax_32nm();
        assert!(e.fp32_mul > 3.0 * e.fp32_add);
    }

    #[test]
    fn breakdown_from_counters() {
        let mut c = EventCounters::new();
        c.fp_mul = 10;
        c.fp_add = 20;
        c.dram_read = 5;
        c.sram_write = 4;
        c.rf_read = 100;
        c.fifo_push = 2;
        let ops = OpEnergies::HOROWITZ_45NM;
        let b = EnergyBreakdown::from_counters(&c, &ops);
        assert!((b.compute_pj - (10.0 * 3.7 + 20.0 * 0.9)).abs() < 1e-9);
        assert!((b.dram_pj - 5.0 * 640.0).abs() < 1e-9);
        assert!((b.sram_pj - 4.0 * 5.0).abs() < 1e-9);
        assert!((b.rf_pj - 100.0 * 0.12).abs() < 1e-9);
        assert!((b.fifo_pj - 2.0 * 1.2).abs() < 1e-9);
        let total = b.compute_pj + b.rf_pj + b.fifo_pj + b.sram_pj + b.dram_pj;
        assert!((b.total_pj() - total).abs() < 1e-9);
        assert!((b.total_joules() - total * 1e-12).abs() < 1e-24);
    }

    #[test]
    fn merged_adds_componentwise() {
        let a = EnergyBreakdown {
            compute_pj: 1.0,
            rf_pj: 2.0,
            fifo_pj: 3.0,
            sram_pj: 4.0,
            dram_pj: 5.0,
        };
        let m = a.merged(&a);
        assert_eq!(m.total_pj(), 2.0 * a.total_pj());
        assert_eq!(m.sram_pj, 8.0);
    }

    #[test]
    fn dram_dominates_a_streaming_workload() {
        // Sanity: for one element streamed through (1 read, 1 write, a few
        // flops), DRAM energy dwarfs compute — the motivation for data
        // reuse in the paper.
        let mut c = EventCounters::new();
        c.dram_read = 1;
        c.dram_write = 1;
        c.fp_mul = 3;
        c.fp_add = 5;
        let b = EnergyBreakdown::from_counters(&c, &OpEnergies::fdmax_32nm());
        assert!(b.dram_pj > 10.0 * b.compute_pj);
    }

    #[test]
    fn display_mentions_total() {
        let b = EnergyBreakdown::default();
        assert!(b.to_string().contains("total"));
    }
}
