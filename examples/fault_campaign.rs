//! Fault campaign: stress the accelerator model with seeded SRAM upsets
//! and flaky DMA, and watch the graceful-degradation chain recover.
//!
//! Run with: `cargo run --release --example fault_campaign`

use fdm::prelude::*;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::resilience::ResiliencePolicy;
use memmodel::faults::{EccMode, FaultCampaign};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Steady heat flow on a 64x64 plate: large enough that every
    // iteration streams DRAM, so the DMA fault model is exercised too.
    let problem = LaplaceProblem::builder(64, 64)
        .boundary(DirichletBoundary::hot_top(1.0))
        .stop(1e-4, 200_000)
        .build()?
        .discretize::<f32>();
    let accel = Accelerator::new(FdmaxConfig::paper_default())?;
    let stop = StopCondition::tolerance(1e-4, 200_000);

    // The clean baseline.
    let clean = accel.solve_with(&problem, HwUpdateMethod::Jacobi, &stop)?;
    println!(
        "clean run       : {} iterations, {} cycles",
        clean.iterations,
        clean.report.cycles()
    );

    // One campaign, three protection schemes. The seed fixes the entire
    // fault schedule: rerunning this example reproduces every upset,
    // retry and rollback bit for bit.
    let policy = ResiliencePolicy {
        max_retries: 1000,
        ..ResiliencePolicy::default()
    };
    for (name, ecc) in [
        ("no ECC (silent)", EccMode::None),
        ("parity (detect)", EccMode::Parity),
        ("SECDED (correct)", EccMode::Secded),
    ] {
        let campaign = FaultCampaign {
            seed: 0xFD_AA,
            sram_flips_per_iteration: 0.02,
            ecc,
            dma_failure_prob: 0.005,
            max_dma_retries: 6,
            dma_backoff_cycles: 16,
        };
        let outcome =
            accel.solve_resilient(&problem, HwUpdateMethod::Jacobi, &stop, campaign, &policy)?;
        let r = &outcome.recovery;
        println!(
            "{name:16}: {} iterations, {} cycles (+{:.1}% vs clean)",
            outcome.iterations,
            outcome.report.cycles(),
            100.0 * (outcome.report.cycles() as f64 / clean.report.cycles() as f64 - 1.0),
        );
        println!("                  {r}");
        println!(
            "                  trace digest {:#018x}",
            r.fault_trace_digest.unwrap_or(0)
        );
        assert!(outcome.converged, "{name} must still converge");
        // Parity discards every corrupted iteration via rollback, and
        // SECDED never lets corruption land, so both end on the clean
        // fixed point bit for bit.
        if ecc != EccMode::None {
            assert_eq!(outcome.solution, clean.solution);
        }
    }

    println!("\nall campaigns recovered; same seed replays identically");
    Ok(())
}
