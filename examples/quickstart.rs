//! Quickstart: solve the Laplace equation on the FDMAX accelerator model
//! and inspect what the hardware did.
//!
//! Run with: `cargo run --release --example quickstart`

use fdm::prelude::*;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the PDE: steady heat flow on a square plate whose top
    //    edge is held at 1.0 and the other edges at 0.0.
    let problem = LaplaceProblem::builder(96, 96)
        .boundary(DirichletBoundary::hot_top(1.0))
        .stop(1e-4, 200_000)
        .build()?
        .discretize::<f32>(); // FDMAX computes in single precision

    // 2. Instantiate the paper's default accelerator: an 8x8 PE array,
    //    64-entry FIFOs, three 4 KB buffers, 200 MHz, 128 GB/s HBM.
    let accel = Accelerator::new(FdmaxConfig::paper_default())?;

    // 3. Solve. The elastic planner picks the array decomposition; the
    //    cycle-accurate simulator runs the iterations and meters
    //    everything.
    let outcome = accel
        .solve(&problem, HwUpdateMethod::Hybrid)
        .expect("valid problem");
    assert!(outcome.converged, "should converge within the budget");

    // 4. The numerical answer...
    let u = &outcome.solution;
    println!(
        "centre temperature: {:.4} (top edge 1.0, others 0.0)",
        u[(48, 48)]
    );

    // ...and the hardware's own account of the run.
    println!("\n{}", outcome.report);
    println!(
        "\nelastic decomposition: {} | {:.3} ms | {:.3} mJ | {} iterations",
        outcome.report.elastic(),
        outcome.report.seconds() * 1e3,
        outcome.report.energy_joules() * 1e3,
        outcome.iterations
    );

    // 5. Cross-check against the pure-software solver: Jacobi results
    //    are bit-identical because the PE pipeline evaluates the exact
    //    same f32 operation order. (Hybrid differs at column-batch seams,
    //    where the hardware falls back to the previous iteration's
    //    operand — see `fdmax::reference` — so the bitwise check uses
    //    Jacobi.)
    let hw_jacobi = accel
        .solve(&problem, HwUpdateMethod::Jacobi)
        .expect("valid problem");
    let sw_jacobi = solve(
        &problem,
        UpdateMethod::Jacobi,
        &StopCondition::tolerance(1e-4, 200_000),
    );
    assert_eq!(
        sw_jacobi.solution(),
        &hw_jacobi.solution,
        "hardware and software disagree"
    );
    assert_eq!(sw_jacobi.iterations(), hw_jacobi.iterations);
    println!("\nbit-exact match with the software Jacobi solver: OK");

    // Hybrid still lands on the same fixed point, just via a slightly
    // different path: check it agrees to f32 solver tolerance.
    let sw_hybrid = solve(
        &problem,
        UpdateMethod::Hybrid,
        &StopCondition::tolerance(1e-4, 200_000),
    );
    let gap = sw_hybrid.solution().diff_max(&outcome.solution);
    println!("hardware-vs-software Hybrid max gap: {gap:.3e} (seam semantics)");
    assert!(gap < 1e-3);
    Ok(())
}
