//! Crash recovery walkthrough for the durable solve service.
//!
//! Three acts, all against the same journal directory:
//!
//! 1. **Baseline** — five mixed-PDE jobs run uninterrupted on a durable
//!    service; their `ServiceReport::digest()`s are the ground truth.
//! 2. **Crash** — the same workload runs again, but the process "dies":
//!    two jobs complete, then the write-ahead journal is cut right
//!    after the last persisted checkpoint (emulating a `kill -9`
//!    mid-solve, torn append and all).
//! 3. **Recovery** — `SolveService::recover` replays the journal,
//!    re-admits the incomplete jobs, resumes the interrupted one from
//!    its checkpoint, and finishes everything **bit-identically** to
//!    the baseline.
//!
//! Run with: `cargo run --release --example crash_recovery`

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::durability::{decode_journal, DurabilityConfig, JournalRecord, JOURNAL_FILE};
use fdmax::resilience::ResiliencePolicy;
use fdmax::service::{JobSpec, ServiceConfig, SolveService};
use memmodel::faults::FaultCampaign;
use std::collections::BTreeMap;
use std::path::Path;

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];
const JOBS: u64 = 5;

/// Dense parity-detected SRAM flips with a zero retry budget: the
/// detailed simulator fails deterministically, so every job is served
/// by the checkpoint-taking hardware-semantics reference rung — the
/// interesting case for recovery.
fn durable_config(dir: &Path) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.campaign = FaultCampaign {
        sram_flips_per_iteration: 5.0,
        dma_failure_prob: 0.0,
        ..FaultCampaign::harsh(0x0B5E55)
    };
    cfg.policy = ResiliencePolicy {
        max_retries: 0,
        ..ResiliencePolicy::default()
    };
    cfg.with_durability(DurabilityConfig::new(dir).with_checkpoint_every(7))
}

fn mixed_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 10 + (i as usize * 3) % 8;
    let steps = 8 + (i as usize * 7) % 24;
    let sp = benchmark_problem::<f32>(kind, n, steps).expect("benchmark problem");
    JobSpec::new(
        sp,
        HwUpdateMethod::Jacobi,
        StopCondition::fixed_steps(steps),
    )
}

fn main() {
    let dir = std::env::temp_dir().join(format!("fdmax-crash-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);

    // Act 1: the uninterrupted run is the ground truth.
    let mut baseline = SolveService::new(durable_config(&dir));
    for i in 0..JOBS {
        let _ = baseline.submit(mixed_spec(i)).expect("admitted");
    }
    let truth: BTreeMap<u64, u64> = baseline
        .drain()
        .iter()
        .map(|r| (r.job.0, r.digest()))
        .collect();
    println!("baseline: {} jobs, digests recorded", truth.len());
    std::fs::remove_dir_all(&dir).expect("reset journal dir");

    // Act 2: the same workload, killed mid-solve. Two jobs finish; then
    // the journal is cut right after the last checkpoint record — the
    // on-disk state an abrupt `kill -9` leaves behind.
    let mut doomed = SolveService::new(durable_config(&dir));
    for i in 0..JOBS {
        let _ = doomed.submit(mixed_spec(i)).expect("admitted");
    }
    for _ in 0..3 {
        let report = doomed.run_next().expect("queued");
        println!(
            "pre-crash: {} served by {:?}, digest {:016x}",
            report.job,
            report.served_by().expect("served"),
            report.digest()
        );
    }
    drop(doomed); // the "crash"

    // Cut the journal right after the last persisted checkpoint: job 2
    // loses its Completed record (it was mid-solve when the process
    // died), jobs 3 and 4 hold only their write-ahead admissions.
    let journal_path = dir.join(JOURNAL_FILE);
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    let mut cut = 0usize;
    let mut end = 0usize;
    for record in &decode_journal(&bytes).records {
        end += record.encode().len();
        if matches!(record, JournalRecord::CheckpointTaken { .. }) {
            cut = end;
        }
    }
    std::fs::write(&journal_path, &bytes[..cut]).expect("truncate journal");
    println!(
        "crash: journal cut to {cut} of {} bytes ({} records survive)",
        bytes.len(),
        decode_journal(&bytes[..cut]).records.len()
    );

    // Act 3: recover, resume, finish — and compare against the truth.
    let (mut revived, summary) = SolveService::recover(durable_config(&dir));
    println!(
        "recovery: {} records replayed, {} jobs already complete, \
         {} re-admitted, {} resumed from a checkpoint",
        summary.records_replayed,
        summary.jobs_completed,
        summary.jobs_recovered,
        summary.resumed_from_checkpoint
    );
    assert!(summary.resumed_from_checkpoint >= 1, "a checkpoint resumed");

    let reports = revived.drain();
    for report in &reports {
        let digest = report.digest();
        let expected = truth[&report.job.0];
        println!(
            "post-crash: {} served by {:?}, digest {digest:016x} {}",
            report.job,
            report.served_by().expect("served"),
            if digest == expected {
                "== baseline"
            } else {
                "!= baseline (BUG)"
            }
        );
        assert_eq!(digest, expected, "recovery must be bit-identical");
    }
    println!(
        "{} interrupted jobs finished bit-identically to the run that \
         never crashed",
        reports.len()
    );
    std::fs::remove_dir_all(&dir).expect("cleanup");
}
