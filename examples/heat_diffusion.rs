//! Transient heat conduction on FDMAX: a cold plate with a heated top
//! edge, stepped through time, with an ASCII rendering of the
//! temperature field and a check against the exact single-mode decay
//! rate.
//!
//! Run with: `cargo run --release --example heat_diffusion`

use fdm::analytic::heat_mode_decay;
use fdm::grid::Grid2D;
use fdm::pde::HeatProblem;
use fdm::precision::Scalar;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use std::f64::consts::PI;

fn render<T: Scalar>(grid: &Grid2D<T>, title: &str) {
    const SHADES: &[u8] = b" .:-=+*#%@";
    println!("{title}");
    // Downsample to at most 32 rows x 64 cols of characters.
    let rstep = (grid.rows() / 24).max(1);
    let cstep = (grid.cols() / 48).max(1);
    for i in (0..grid.rows()).step_by(rstep) {
        let mut line = String::new();
        for j in (0..grid.cols()).step_by(cstep) {
            let v = grid[(i, j)].to_f64().clamp(0.0, 1.0);
            let idx = (v * (SHADES.len() - 1) as f64).round() as usize;
            line.push(SHADES[idx] as char);
        }
        println!("  {line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let h = 1.0 / (n - 1) as f64;
    let alpha = 0.1;
    let dt = 0.2 * h * h / alpha; // comfortably inside the FTCS bound

    // A single sine mode: decays as exp(-2 alpha pi^2 t) with zero
    // boundary, which gives us an exact answer to compare against.
    let accel = Accelerator::new(FdmaxConfig::paper_default())?;
    for steps in [0usize, 200, 800] {
        let problem = HeatProblem::builder(n, n)
            .spacing(h, h)
            .alpha(alpha)
            .time(dt, steps.max(1))
            .initial_fn(|x, y| (PI * x).sin() * (PI * y).sin())
            .build()?
            .discretize::<f32>();
        if steps == 0 {
            render(&problem.initial, "t = 0 (initial mode)");
            continue;
        }
        let outcome = accel
            .solve(&problem, HwUpdateMethod::Jacobi)
            .expect("valid problem");
        let t = dt * steps as f64;
        render(
            &outcome.solution,
            &format!(
                "t = {t:.3} after {steps} steps ({} cycles, {:.3} ms of accelerator time)",
                outcome.report.cycles(),
                outcome.report.seconds() * 1e3
            ),
        );
        let exact = heat_mode_decay(n, n, alpha, t);
        let exact32: Grid2D<f32> = exact.convert();
        let err = outcome.solution.diff_max(&exact32);
        let peak = exact.diff_max(&Grid2D::zeros(n, n));
        println!("  max error vs exact decay: {err:.2e} (peak amplitude {peak:.3e})\n");
    }
    Ok(())
}
