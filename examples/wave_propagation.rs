//! Wave propagation on FDMAX: a plucked membrane rippling outward, with
//! snapshots rendered as ASCII and the leap-frog history (`U^{k-1}` via
//! the `OffsetBuffer`) exercised end to end.
//!
//! Run with: `cargo run --release --example wave_propagation`

use fdm::grid::Grid2D;
use fdm::pde::WaveProblem;
use fdm::precision::Scalar;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;

fn render<T: Scalar>(grid: &Grid2D<T>, title: &str) {
    // Signed rendering: negative displacement gets '-'-ish glyphs.
    const POS: &[u8] = b" .:-=+*#%@";
    println!("{title}");
    let rstep = (grid.rows() / 24).max(1);
    let cstep = (grid.cols() / 48).max(1);
    for i in (0..grid.rows()).step_by(rstep) {
        let mut line = String::new();
        for j in (0..grid.cols()).step_by(cstep) {
            let v = grid[(i, j)].to_f64();
            let idx = (v.abs().clamp(0.0, 1.0) * (POS.len() - 1) as f64).round() as usize;
            let ch = POS[idx] as char;
            line.push(if v < -0.05 {
                ch.to_ascii_lowercase()
            } else {
                ch
            });
        }
        println!("  {line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 96;
    let h = 1.0 / (n - 1) as f64;
    let c = 1.0;
    let dt = 0.4 * h / c; // CFL ratio r_X + r_Y = 0.32

    let accel = Accelerator::new(FdmaxConfig::paper_default())?;
    println!("plucked membrane, {n}x{n} grid, c = {c}, dt = {dt:.5} (CFL-safe)\n");
    for steps in [1usize, 60, 120, 240] {
        let problem = WaveProblem::builder(n, n)
            .spacing(h, h)
            .wave_speed(c)
            .time(dt, steps)
            .initial_fn(|x, y| {
                let dx = x - 0.5;
                let dy = y - 0.5;
                (-(dx * dx + dy * dy) / 0.005).exp()
            })
            .build()?
            .discretize::<f32>();
        let outcome = accel
            .solve(&problem, HwUpdateMethod::Jacobi)
            .expect("valid problem");
        render(
            &outcome.solution,
            &format!(
                "t = {:.3} ({} leap-frog steps, {} accelerator cycles)",
                dt * (steps + 1) as f64,
                steps,
                outcome.report.cycles()
            ),
        );
        let norm = outcome.solution.norm_l2();
        println!("  field L2 norm: {norm:.4} (bounded = stable)\n");
        assert!(norm.is_finite() && norm < 50.0, "instability detected");
    }
    Ok(())
}
