//! 3-D heat conduction on the unmodified 2-D FDMAX array: a cube with a
//! hot mode in its centre, cooled from all faces, stepped through time by
//! the plane-sweep mapping (z-coupling via the `OffsetBuffer`).
//!
//! Run with: `cargo run --release --example heated_cube`

use fdm::volume::{heat3d_mode_decay, heat3d_stencil, Grid3D, SevenPointStencil};
use fdmax::config::FdmaxConfig;
use fdmax::volume::VolumeSolver;

fn render_midplane(v: &Grid3D<f32>, title: &str) {
    const SHADES: &[u8] = b" .:-=+*#%@";
    println!("{title}");
    let z = v.planes() / 2;
    for i in 0..v.rows() {
        let mut line = String::new();
        for j in 0..v.cols() {
            let val = (v[(z, i, j)] as f64).clamp(0.0, 1.0);
            line.push(SHADES[(val * (SHADES.len() - 1) as f64).round() as usize] as char);
        }
        println!("  {line}");
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 21;
    let h = 1.0 / (n - 1) as f64;
    let alpha = 0.05;
    let dt = 0.8 * h * h / (6.0 * alpha); // inside the 3-D FTCS bound

    let stencil: SevenPointStencil<f32> = heat3d_stencil(alpha, dt, h);
    let mut cur: Grid3D<f32> = heat3d_mode_decay(n, n, n, alpha, 0.0).convert();
    let mut next = cur.clone();
    let mut solver = VolumeSolver::new(FdmaxConfig::paper_default(), n, n)?;

    println!(
        "3-D heat equation on a {n}^3 cube, dt = {dt:.5}, plane-swept on the 2-D array \
         (elastic config {})\n",
        solver.elastic()
    );

    render_midplane(&cur, "t = 0 (mid-plane slice)");
    let mut total_steps = 0usize;
    for burst in [40usize, 120] {
        for _ in 0..burst {
            solver.step(&stencil, &cur, &mut next);
            core::mem::swap(&mut cur, &mut next);
        }
        total_steps += burst;
        let t = dt * total_steps as f64;
        render_midplane(
            &cur,
            &format!(
                "\nt = {t:.4} after {total_steps} steps ({} cycles so far)",
                solver.counters().cycles
            ),
        );
        // Check against the exact single-mode decay.
        let exact: Grid3D<f32> = heat3d_mode_decay(n, n, n, alpha, t).convert();
        let err = cur.diff_max(&exact);
        println!("  max error vs exact 3-D decay: {err:.2e}");
        assert!(err < 5e-2, "numerical drift too large");
    }

    println!(
        "\n{} plane-sweep iterations, {:.3} ms of modelled accelerator time, {} multiplications",
        solver.iterations(),
        solver.counters().cycles as f64 / 200e6 * 1e3,
        solver.counters().fp_mul
    );
    Ok(())
}
