//! Variable-coefficient Poisson through the matrix-free operator layer.
//!
//! Solves the heterogeneous diffusion problem `-∇·(κ∇u) = f` on the unit
//! square — a heated plate with a high-conductivity circular inclusion —
//! with **no new solver code**: [`CoefficientField::diffusion`] samples
//! `κ` at face midpoints, [`StencilOp`] applies the flux-form operator
//! matrix-free, and the same [`operator_cg`] that drives the
//! constant-coefficient solves runs unchanged because the flux operator
//! stays symmetric positive definite for any positive `κ`.
//!
//! Run with: `cargo run --release --example variable_coefficient`

use fdm::grid::Grid2D;
use fdm::ops::{self, CoefficientField, StencilOp};
use fdm::solver::krylov::operator_cg;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 65usize;
    let h = 1.0 / (n - 1) as f64;

    // A copper-like circular inclusion (100x the background conductivity)
    // in the middle of the plate, smoothly blended.
    let kappa = |x: f64, y: f64| {
        let (dx, dy) = (x - 0.5, y - 0.5);
        1.0 + 99.0 * (-(dx * dx + dy * dy) / 0.02).exp()
    };

    // Heat source in the lower-left quadrant, sink in the upper-right,
    // zero Dirichlet boundary all around (b keeps its zero ring).
    let source = |x: f64, y: f64| {
        let blob = |cx: f64, cy: f64| {
            let (dx, dy) = (x - cx, y - cy);
            (-(dx * dx + dy * dy) / 0.01).exp()
        };
        50.0 * blob(0.3, 0.3) - 50.0 * blob(0.7, 0.7)
    };
    let b = Grid2D::from_fn(n, n, |i, j| {
        if i == 0 || j == 0 || i == n - 1 || j == n - 1 {
            0.0
        } else {
            source(j as f64 * h, i as f64 * h)
        }
    });

    // The variable-coefficient operator, and the homogeneous plate as
    // the control: same grid, same source, kappa = 1 everywhere.
    let hetero = StencilOp::new(n, n, CoefficientField::diffusion(n, n, kappa))?;
    let homo = StencilOp::new(n, n, CoefficientField::diffusion(n, n, |_, _| 1.0))?;

    let (u_het, r_het) = operator_cg(&hetero, &b, 1e-10, 10_000);
    let (u_hom, r_hom) = operator_cg(&homo, &b, 1e-10, 10_000);
    assert!(r_het.converged && r_hom.converged, "CG must converge");
    println!(
        "heterogeneous plate: {} CG iterations, final residual {:.3e}",
        r_het.iterations,
        r_het.final_residual()
    );
    println!(
        "homogeneous control: {} CG iterations, final residual {:.3e}",
        r_hom.iterations,
        r_hom.final_residual()
    );

    // Verify the solve with the operator itself: ||b - A*u|| in one
    // fused pass over the grid.
    let rhs_offset = fdm::pde::OffsetField::Static(b.clone());
    let mut residual = Grid2D::zeros(n, n);
    let norm2 = hetero.residual_axpy(&rhs_offset, None, &u_het, &mut residual);
    println!("recomputed ||b - A*u|| = {:.3e}", norm2.sqrt());
    assert!(
        norm2.sqrt() <= 1e-9 * ops::norm(b.as_slice()),
        "solution does not satisfy the system"
    );

    // Physics check: the conductive inclusion short-circuits the plate,
    // flattening the temperature across its center relative to the
    // homogeneous control (smaller drop across the inclusion's span).
    let probe = |u: &Grid2D<f64>| {
        let a = u[(2 * n / 5, 2 * n / 5)];
        let c = u[(3 * n / 5, 3 * n / 5)];
        (a - c).abs()
    };
    let drop_het = probe(&u_het);
    let drop_hom = probe(&u_hom);
    println!("temperature drop across the center: {drop_het:.4} vs {drop_hom:.4} homogeneous");
    assert!(
        drop_het < drop_hom,
        "a conductive inclusion must flatten the field across it"
    );

    // The operator algebra underneath: the flux form keeps <A*u, v> ==
    // <u, A*v>, which is exactly why CG needed no changes.
    let mut au = Grid2D::zeros(n, n);
    let mut av = Grid2D::zeros(n, n);
    hetero.apply(&u_het, &mut au);
    hetero.apply(&u_hom, &mut av);
    let lhs = ops::dot(au.as_slice(), u_hom.as_slice());
    let rhs = ops::dot(u_het.as_slice(), av.as_slice());
    println!("symmetry: <A*u, v> = {lhs:.6e}, <u, A*v> = {rhs:.6e}");
    assert!((lhs - rhs).abs() <= 1e-9 * lhs.abs().max(1.0));

    Ok(())
}
