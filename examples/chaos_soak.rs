//! Chaos/soak benchmark of the resilient solve service.
//!
//! Replays the fixed seed matrix of `tests/service_chaos.rs` at soak
//! scale — hundreds of mixed-PDE jobs per seed under parity-detected
//! SRAM upsets and a flaky DMA bus — and emits `BENCH_service.json`
//! with throughput, latency percentiles and the fallback rate.
//!
//! Every reported metric lives in the *simulated* domain (cycles at the
//! configured clock), so the artifact is bit-reproducible: CI regenerates
//! it and fails if the checked-in copy drifts.
//!
//! Run with: `cargo run --release --example chaos_soak`

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::service::{
    JobOutcome, JobSpec, ServiceConfig, ServiceReport, SolveService, SubmitError,
};
use memmodel::faults::{EccMode, FaultCampaign};

/// The same seed matrix the chaos tests pin.
const SEEDS: [u64; 3] = [0xA5A5, 0x00C1_05ED, 0xFD11_2233];
const JOBS_PER_SEED: u64 = 150;

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

fn chaos_config(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.queue_capacity = 8;
    cfg.max_job_iterations = 40;
    cfg.deadline_iterations = 8 * 40;
    cfg.campaign = FaultCampaign {
        seed,
        sram_flips_per_iteration: 0.05,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.005,
        max_dma_retries: 4,
        dma_backoff_cycles: 16,
    };
    cfg
}

fn mixed_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 10 + (i as usize * 3) % 12;
    let steps = 8 + (i as usize * 7) % 32;
    let sp = benchmark_problem::<f32>(kind, n, steps).expect("benchmark problem");
    let method = if i.is_multiple_of(3) {
        HwUpdateMethod::Hybrid
    } else {
        HwUpdateMethod::Jacobi
    };
    JobSpec::new(sp, method, StopCondition::fixed_steps(steps))
}

/// Interleaved submit/drain soak, identical to the test harness: every
/// 17th job is cancelled right after admission, saturation drains one.
fn soak(seed: u64) -> (Vec<ServiceReport>, SolveService) {
    let mut svc = SolveService::new(chaos_config(seed));
    let mut reports = Vec::new();
    let mut admitted = 0u64;
    while admitted < JOBS_PER_SEED {
        match svc.submit(mixed_spec(admitted)) {
            Ok(ticket) => {
                if admitted.is_multiple_of(17) {
                    ticket.cancel.cancel();
                }
                admitted += 1;
            }
            Err(SubmitError::Saturated { .. }) => {
                reports.push(svc.run_next().expect("saturated queue is non-empty"));
            }
            Err(SubmitError::Rejected(e)) => panic!("valid job rejected: {e}"),
        }
    }
    reports.extend(svc.drain());
    (reports, svc)
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct SeedRow {
    seed: u64,
    served: u64,
    fallback_rate: f64,
    p50: u64,
    p99: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wall = std::time::Instant::now();
    let clock_hz = FdmaxConfig::paper_default().clock_hz;

    let mut all_latencies: Vec<u64> = Vec::new();
    let mut rows: Vec<SeedRow> = Vec::new();
    let mut served = 0u64;
    let mut cancelled = 0u64;
    let mut failed = 0u64;
    let mut deadline_misses = 0u64;
    let mut transitions = 0u64;
    let mut total_cycles = 0u64;

    for seed in SEEDS {
        let (reports, svc) = soak(seed);
        let stats = svc.stats();
        let mut latencies: Vec<u64> = reports
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Served { .. }))
            .map(|r| r.latency_cycles)
            .collect();
        latencies.sort_unstable();
        total_cycles += latencies.iter().sum::<u64>();
        served += stats.served;
        cancelled += stats.cancelled;
        failed += stats.failed;
        deadline_misses += stats.deadline_misses;
        transitions += svc.transitions().len() as u64;
        rows.push(SeedRow {
            seed,
            served: stats.served,
            fallback_rate: stats.fallback_rate(),
            p50: percentile(&latencies, 0.50),
            p99: percentile(&latencies, 0.99),
        });
        all_latencies.extend(latencies);
        println!(
            "seed {seed:#010x}: {} served, {} cancelled, {} failed, \
             fallback rate {:.3}, {} breaker transition(s)",
            stats.served,
            stats.cancelled,
            stats.failed,
            stats.fallback_rate(),
            svc.transitions().len()
        );
    }

    all_latencies.sort_unstable();
    let submitted = SEEDS.len() as u64 * JOBS_PER_SEED;
    let fallback_rate = rows
        .iter()
        .map(|r| r.fallback_rate * r.served as f64)
        .sum::<f64>()
        / served.max(1) as f64;
    let simulated_seconds = total_cycles as f64 / clock_hz;
    let jobs_per_sim_sec = served as f64 / simulated_seconds.max(f64::MIN_POSITIVE);
    let p50 = percentile(&all_latencies, 0.50);
    let p99 = percentile(&all_latencies, 0.99);

    let per_seed = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"seed\": \"{:#010x}\",\n      \"served\": {},\n      \
                 \"fallback_rate\": {:.6},\n      \"p50_latency_cycles\": {},\n      \
                 \"p99_latency_cycles\": {}\n    }}",
                r.seed, r.served, r.fallback_rate, r.p50, r.p99
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"service_chaos_soak\",\n  \
         \"clock_mhz\": {:.1},\n  \
         \"jobs_submitted\": {submitted},\n  \
         \"jobs_served\": {served},\n  \
         \"jobs_cancelled\": {cancelled},\n  \
         \"jobs_failed\": {failed},\n  \
         \"deadline_misses\": {deadline_misses},\n  \
         \"breaker_transitions\": {transitions},\n  \
         \"fallback_rate\": {fallback_rate:.6},\n  \
         \"jobs_per_simulated_sec\": {jobs_per_sim_sec:.3},\n  \
         \"p50_latency_cycles\": {p50},\n  \
         \"p99_latency_cycles\": {p99},\n  \
         \"per_seed\": [\n{per_seed}\n  ]\n}}\n",
        clock_hz / 1e6,
    );
    std::fs::write("BENCH_service.json", &json)?;

    println!();
    println!(
        "total: {served}/{submitted} served ({cancelled} cancelled, {failed} failed), \
         {deadline_misses} deadline miss(es)"
    );
    println!(
        "latency p50 {p50} / p99 {p99} simulated cycles; \
         {jobs_per_sim_sec:.1} jobs per simulated second; \
         fallback rate {fallback_rate:.3}"
    );
    println!(
        "wrote BENCH_service.json in {:.2}s of wall time",
        wall.elapsed().as_secs_f64()
    );
    Ok(())
}
