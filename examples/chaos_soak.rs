//! Chaos/soak benchmark of the resilient solve service.
//!
//! Replays the fixed seed matrix of `tests/service_chaos.rs` at soak
//! scale — hundreds of mixed-PDE jobs per seed under parity-detected
//! SRAM upsets and a flaky DMA bus — then runs one deterministic
//! kill/recover cycle per seed against the durable service (half the
//! jobs complete, the journal loses its tail mid-frame, recovery
//! resumes and finishes), then drives the multi-tenant front end
//! through a sustained overload (three tenants offering jobs at more
//! than twice the pool's service rate, one of them an adversarial
//! flooder), and emits `BENCH_service.json` with throughput, latency
//! percentiles, the fallback rate, the recovery counts and the
//! `overload` block (shed rate, per-tenant queueing-delay percentiles,
//! hedge win rate).
//!
//! Every reported metric lives in the *simulated* domain (cycles at the
//! configured clock), so the artifact is bit-reproducible: CI regenerates
//! it and fails if the checked-in copy drifts.
//!
//! Run with: `cargo run --release --example chaos_soak`

use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::durability::{decode_journal, DurabilityConfig, JournalRecord, JOURNAL_FILE};
use fdmax::resilience::ResiliencePolicy;
use fdmax::service::frontend::{Frontend, FrontendConfig, TenantConfig, TenantPriority};
use fdmax::service::{
    HedgeConfig, JobOutcome, JobSpec, Rung, ServiceConfig, ServiceReport, SolveService,
    SubmitError, TenantId,
};
use memmodel::faults::{EccMode, FaultCampaign};
use std::path::Path;

/// The same seed matrix the chaos tests pin.
const SEEDS: [u64; 3] = [0xA5A5, 0x00C1_05ED, 0xFD11_2233];
const JOBS_PER_SEED: u64 = 150;

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

fn chaos_config(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.queue_capacity = 8;
    cfg.max_job_iterations = 40;
    cfg.deadline_iterations = 8 * 40;
    cfg.campaign = FaultCampaign {
        seed,
        sram_flips_per_iteration: 0.05,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.005,
        max_dma_retries: 4,
        dma_backoff_cycles: 16,
    };
    cfg
}

fn mixed_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 10 + (i as usize * 3) % 12;
    let steps = 8 + (i as usize * 7) % 32;
    let sp = benchmark_problem::<f32>(kind, n, steps).expect("benchmark problem");
    let method = if i.is_multiple_of(3) {
        HwUpdateMethod::Hybrid
    } else {
        HwUpdateMethod::Jacobi
    };
    JobSpec::new(sp, method, StopCondition::fixed_steps(steps))
}

/// Interleaved submit/drain soak, identical to the test harness: every
/// 17th job is cancelled right after admission, saturation drains one.
fn soak(seed: u64) -> (Vec<ServiceReport>, SolveService) {
    let mut svc = SolveService::new(chaos_config(seed));
    let mut reports = Vec::new();
    let mut admitted = 0u64;
    while admitted < JOBS_PER_SEED {
        match svc.submit(mixed_spec(admitted)) {
            Ok(ticket) => {
                if admitted.is_multiple_of(17) {
                    ticket.cancel.cancel();
                }
                admitted += 1;
            }
            Err(SubmitError::Saturated { .. }) => {
                reports.push(svc.run_next().expect("saturated queue is non-empty"));
            }
            Err(SubmitError::Rejected(e)) => panic!("valid job rejected: {e}"),
        }
    }
    reports.extend(svc.drain());
    (reports, svc)
}

const RECOVERY_JOBS: u64 = 8;

/// Durable variant for the kill/recover cycles: dense parity-detected
/// flips with a zero retry budget make the detailed rung fail every
/// job, so the checkpoint-taking reference rung serves — the
/// interesting case for recovery.
fn recovery_config(dir: &Path, seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.campaign = FaultCampaign {
        sram_flips_per_iteration: 5.0,
        dma_failure_prob: 0.0,
        ..FaultCampaign::harsh(seed)
    };
    cfg.policy = ResiliencePolicy {
        max_retries: 0,
        ..ResiliencePolicy::default()
    };
    cfg.with_durability(DurabilityConfig::new(dir).with_checkpoint_every(7))
}

struct RecoveryRow {
    jobs_recovered: u64,
    resumed_from_checkpoint: u64,
    torn_tail: bool,
    digest_matches: u64,
    digest_mismatches: u64,
}

/// One deterministic kill/recover cycle: half the jobs complete, the
/// process "dies", the journal loses its tail mid-frame (a torn
/// append), and recovery resumes the interrupted job from its last
/// checkpoint and replays the rest — every digest compared against the
/// run that never crashed.
fn kill_recover_cycle(seed: u64) -> RecoveryRow {
    let tmp = |tag: &str| {
        let d = std::env::temp_dir().join(format!(
            "fdmax-soak-recov-{tag}-{seed:x}-{}",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&d);
        d
    };

    // Ground truth: the same workload, never interrupted.
    let base = tmp("base");
    let mut svc = SolveService::new(recovery_config(&base, seed));
    for i in 0..RECOVERY_JOBS {
        let _ = svc.submit(mixed_spec(i)).expect("admitted");
    }
    let truth: std::collections::BTreeMap<u64, u64> =
        svc.drain().iter().map(|r| (r.job.0, r.digest())).collect();
    std::fs::remove_dir_all(&base).expect("cleanup");

    // The doomed run: half the jobs complete, then the crash.
    let dir = tmp("crash");
    let mut doomed = SolveService::new(recovery_config(&dir, seed));
    for i in 0..RECOVERY_JOBS {
        let _ = doomed.submit(mixed_spec(i)).expect("admitted");
    }
    for _ in 0..RECOVERY_JOBS / 2 {
        let _ = doomed.run_next().expect("queued");
    }
    drop(doomed);

    // Cut the journal five bytes past the last persisted checkpoint:
    // the final Completed record is torn open, so its job was mid-solve
    // as far as any future scan can tell.
    let journal_path = dir.join(JOURNAL_FILE);
    let bytes = std::fs::read(&journal_path).expect("journal exists");
    let mut cut = 0usize;
    let mut end = 0usize;
    for record in &decode_journal(&bytes).records {
        end += record.encode().len();
        if matches!(record, JournalRecord::CheckpointTaken { .. }) {
            cut = end;
        }
    }
    let torn_cut = (cut + 5).min(bytes.len());
    std::fs::write(&journal_path, &bytes[..torn_cut]).expect("truncate journal");

    let (mut revived, summary) = SolveService::recover(recovery_config(&dir, seed));
    let mut digest_matches = 0u64;
    let mut digest_mismatches = 0u64;
    for report in revived.drain() {
        if truth[&report.job.0] == report.digest() {
            digest_matches += 1;
        } else {
            digest_mismatches += 1;
        }
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");
    RecoveryRow {
        jobs_recovered: summary.jobs_recovered,
        resumed_from_checkpoint: summary.resumed_from_checkpoint,
        torn_tail: summary.torn_tail,
        digest_matches,
        digest_mismatches,
    }
}

/// Jobs offered to the front end across the overload scenario.
const OVERLOAD_JOBS: u64 = 12_000;
/// Worker pool size for the overload scenario; the arrival pattern
/// offers five jobs per scheduler round against it.
const OVERLOAD_WORKERS: usize = 2;

const CRITICAL: TenantId = TenantId(1);
const STANDARD: TenantId = TenantId(2);
const FLOOD: TenantId = TenantId(3);

/// Mixed-PDE job stream for the overload scenario: small grids and
/// varied step counts (so the hedge trigger sees real latency spread),
/// entered at the reference rung to keep 12k jobs tractable.
fn overload_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 8 + (i as usize * 5) % 9;
    let steps = 4 + (i as usize * 11) % 37;
    let sp = benchmark_problem::<f32>(kind, n, steps).expect("benchmark problem");
    JobSpec::new(
        sp,
        HwUpdateMethod::Jacobi,
        StopCondition::fixed_steps(steps),
    )
    .with_entry_rung(Rung::Reference)
}

fn overload_frontend() -> Frontend {
    let mut service = ServiceConfig::new(FdmaxConfig::paper_default());
    service.max_job_iterations = 64;
    service.deadline_iterations = 4_000;
    service = service.with_hedge(HedgeConfig {
        percentile: 75,
        min_samples: 4,
    });
    let config = FrontendConfig::new(service, OVERLOAD_WORKERS)
        .with_tenant(
            CRITICAL,
            TenantConfig {
                weight: 2,
                max_queued: 8,
                max_in_flight: 2,
                priority: TenantPriority::Critical,
            },
        )
        .with_tenant(
            STANDARD,
            TenantConfig {
                weight: 2,
                max_queued: 8,
                max_in_flight: 2,
                priority: TenantPriority::Standard,
            },
        )
        .with_tenant(
            FLOOD,
            TenantConfig {
                weight: 1,
                max_queued: 8,
                max_in_flight: 2,
                priority: TenantPriority::Standard,
            },
        )
        .with_queue_delay_budget(60);
    Frontend::new(config)
}

struct OverloadTenantRow {
    tenant: TenantId,
    role: &'static str,
    admitted: u64,
    completed: u64,
    shed: u64,
    rejected_quota: u64,
    brownout_dispatches: u64,
    p50_delay: u64,
    p99_delay: u64,
}

struct OverloadRow {
    offered: u64,
    admitted: u64,
    completed: u64,
    shed: u64,
    rejected_quota: u64,
    deadline_misses: u64,
    brownout_dispatches: u64,
    rounds: u64,
    hedges_launched: u64,
    hedge_wins: u64,
    tenants: Vec<OverloadTenantRow>,
}

impl OverloadRow {
    fn shed_rate(&self) -> f64 {
        self.shed as f64 / self.offered.max(1) as f64
    }

    fn hedge_win_rate(&self) -> f64 {
        self.hedge_wins as f64 / self.hedges_launched.max(1) as f64
    }
}

/// Sustained overload: every scheduler round offers one critical, one
/// standard and three adversarial-flood jobs against a pool that
/// serves at most [`OVERLOAD_WORKERS`] — quotas bound the queues, the
/// shedder and the brownout ladder bound the delay, and every metric
/// is a pure function of the (virtual-time) schedule.
fn overload_scenario() -> OverloadRow {
    let mut fe = overload_frontend();
    let mut offered = 0u64;
    while offered < OVERLOAD_JOBS {
        for tenant in [CRITICAL, STANDARD, FLOOD, FLOOD, FLOOD] {
            if offered >= OVERLOAD_JOBS {
                break;
            }
            // Refusals (quota, shed) are tallied by the front end.
            let _ = fe.submit(overload_spec(offered).with_tenant(tenant));
            offered += 1;
        }
        let _ = fe.run_round();
    }
    let _ = fe.drain();

    let stats = fe.stats();
    let pool = fe.pool_stats();
    let tenants = [
        (CRITICAL, "critical"),
        (STANDARD, "standard"),
        (FLOOD, "adversarial"),
    ]
    .into_iter()
    .map(|(id, role)| {
        let t = fe.tenant_stats(id).expect("registered tenant");
        OverloadTenantRow {
            tenant: id,
            role,
            admitted: t.admitted,
            completed: t.completed,
            shed: t.shed,
            rejected_quota: t.rejected_quota,
            brownout_dispatches: t.brownout_dispatches,
            p50_delay: t.delay_percentile(50).unwrap_or(0),
            p99_delay: t.delay_percentile(99).unwrap_or(0),
        }
    })
    .collect();
    OverloadRow {
        offered,
        admitted: stats.admitted,
        completed: stats.completed,
        shed: stats.shed,
        rejected_quota: stats.rejected_quota,
        deadline_misses: stats.deadline_misses,
        brownout_dispatches: stats.brownout_dispatches,
        rounds: stats.rounds,
        hedges_launched: pool.hedges_launched,
        hedge_wins: pool.hedge_wins,
        tenants,
    }
}

/// The `overload` block of `BENCH_service.json`, rendered exactly once
/// so the replay assertion and the artifact share bytes.
fn overload_json(o: &OverloadRow) -> String {
    let per_tenant = o
        .tenants
        .iter()
        .map(|t| {
            format!(
                "      {{\n        \"tenant\": {},\n        \"role\": \"{}\",\n        \
                 \"admitted\": {},\n        \"completed\": {},\n        \
                 \"shed\": {},\n        \"rejected_quota\": {},\n        \
                 \"brownout_dispatches\": {},\n        \
                 \"p50_queue_delay_iterations\": {},\n        \
                 \"p99_queue_delay_iterations\": {}\n      }}",
                t.tenant.0,
                t.role,
                t.admitted,
                t.completed,
                t.shed,
                t.rejected_quota,
                t.brownout_dispatches,
                t.p50_delay,
                t.p99_delay
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n    \"workers\": {},\n    \"offered\": {},\n    \"admitted\": {},\n    \
         \"completed\": {},\n    \"shed\": {},\n    \"rejected_quota\": {},\n    \
         \"shed_rate\": {:.6},\n    \"deadline_misses\": {},\n    \
         \"brownout_dispatches\": {},\n    \"scheduler_rounds\": {},\n    \
         \"hedges_launched\": {},\n    \"hedge_wins\": {},\n    \
         \"hedge_win_rate\": {:.6},\n    \"per_tenant\": [\n{per_tenant}\n    ]\n  }}",
        OVERLOAD_WORKERS,
        o.offered,
        o.admitted,
        o.completed,
        o.shed,
        o.rejected_quota,
        o.shed_rate(),
        o.deadline_misses,
        o.brownout_dispatches,
        o.rounds,
        o.hedges_launched,
        o.hedge_wins,
        o.hedge_win_rate(),
    )
}

fn percentile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() - 1) as f64 * q).round() as usize;
    sorted[idx]
}

struct SeedRow {
    seed: u64,
    served: u64,
    fallback_rate: f64,
    p50: u64,
    p99: u64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let wall = std::time::Instant::now();
    let clock_hz = FdmaxConfig::paper_default().clock_hz;

    let mut all_latencies: Vec<u64> = Vec::new();
    let mut rows: Vec<SeedRow> = Vec::new();
    let mut served = 0u64;
    let mut cancelled = 0u64;
    let mut failed = 0u64;
    let mut deadline_misses = 0u64;
    let mut transitions = 0u64;
    let mut total_cycles = 0u64;

    for seed in SEEDS {
        let (reports, svc) = soak(seed);
        let stats = svc.stats();
        let mut latencies: Vec<u64> = reports
            .iter()
            .filter(|r| matches!(r.outcome, JobOutcome::Served { .. }))
            .map(|r| r.latency_cycles)
            .collect();
        latencies.sort_unstable();
        total_cycles += latencies.iter().sum::<u64>();
        served += stats.served;
        cancelled += stats.cancelled;
        failed += stats.failed;
        deadline_misses += stats.deadline_misses;
        transitions += svc.transitions().len() as u64;
        rows.push(SeedRow {
            seed,
            served: stats.served,
            fallback_rate: stats.fallback_rate(),
            p50: percentile(&latencies, 0.50),
            p99: percentile(&latencies, 0.99),
        });
        all_latencies.extend(latencies);
        println!(
            "seed {seed:#010x}: {} served, {} cancelled, {} failed, \
             fallback rate {:.3}, {} breaker transition(s)",
            stats.served,
            stats.cancelled,
            stats.failed,
            stats.fallback_rate(),
            svc.transitions().len()
        );
    }

    let mut recovery_rows: Vec<RecoveryRow> = Vec::new();
    for seed in SEEDS {
        let row = kill_recover_cycle(seed);
        println!(
            "recovery seed {seed:#010x}: {} re-admitted, {} resumed from a \
             checkpoint, torn tail {}, {}/{} digests match the uncrashed run",
            row.jobs_recovered,
            row.resumed_from_checkpoint,
            row.torn_tail,
            row.digest_matches,
            row.digest_matches + row.digest_mismatches
        );
        assert_eq!(
            row.digest_mismatches, 0,
            "seed {seed:#x}: recovery diverged from the uninterrupted run"
        );
        recovery_rows.push(row);
    }
    let jobs_recovered: u64 = recovery_rows.iter().map(|r| r.jobs_recovered).sum();
    let resumed: u64 = recovery_rows
        .iter()
        .map(|r| r.resumed_from_checkpoint)
        .sum();
    let torn_tails: u64 = recovery_rows.iter().map(|r| u64::from(r.torn_tail)).sum();
    let digest_matches: u64 = recovery_rows.iter().map(|r| r.digest_matches).sum();

    // Overload: run the whole scenario twice — the schedule lives
    // entirely in virtual time, so the two runs must agree bit for bit
    // (the deterministic-replay contract, enforced before the artifact
    // is written).
    let overload = overload_scenario();
    let overload_block = overload_json(&overload);
    assert_eq!(
        overload_block,
        overload_json(&overload_scenario()),
        "overload scenario diverged between two identical runs"
    );
    assert_eq!(
        overload.deadline_misses, 0,
        "an admitted job missed its deadline under overload"
    );
    assert_eq!(
        overload.offered,
        overload.admitted + overload.shed + overload.rejected_quota,
        "every offered job is admitted, shed or quota-refused"
    );
    println!(
        "overload: {}/{} admitted ({} shed, {} quota-refused), {} completed \
         across {} round(s), {} brownout dispatch(es), shed rate {:.3}",
        overload.admitted,
        overload.offered,
        overload.shed,
        overload.rejected_quota,
        overload.completed,
        overload.rounds,
        overload.brownout_dispatches,
        overload.shed_rate()
    );
    for t in &overload.tenants {
        println!(
            "  {} ({}): {} admitted, {} completed, {} shed, {} quota-refused, \
             queue delay p50 {} / p99 {} iterations",
            t.tenant,
            t.role,
            t.admitted,
            t.completed,
            t.shed,
            t.rejected_quota,
            t.p50_delay,
            t.p99_delay
        );
    }
    println!(
        "  hedging: {} launched, {} won (win rate {:.3})",
        overload.hedges_launched,
        overload.hedge_wins,
        overload.hedge_win_rate()
    );

    all_latencies.sort_unstable();
    let submitted = SEEDS.len() as u64 * JOBS_PER_SEED;
    let fallback_rate = rows
        .iter()
        .map(|r| r.fallback_rate * r.served as f64)
        .sum::<f64>()
        / served.max(1) as f64;
    let simulated_seconds = total_cycles as f64 / clock_hz;
    let jobs_per_sim_sec = served as f64 / simulated_seconds.max(f64::MIN_POSITIVE);
    let p50 = percentile(&all_latencies, 0.50);
    let p99 = percentile(&all_latencies, 0.99);

    let per_seed = rows
        .iter()
        .map(|r| {
            format!(
                "    {{\n      \"seed\": \"{:#010x}\",\n      \"served\": {},\n      \
                 \"fallback_rate\": {:.6},\n      \"p50_latency_cycles\": {},\n      \
                 \"p99_latency_cycles\": {}\n    }}",
                r.seed, r.served, r.fallback_rate, r.p50, r.p99
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let json = format!(
        "{{\n  \"benchmark\": \"service_chaos_soak\",\n  \
         \"clock_mhz\": {:.1},\n  \
         \"jobs_submitted\": {submitted},\n  \
         \"jobs_served\": {served},\n  \
         \"jobs_cancelled\": {cancelled},\n  \
         \"jobs_failed\": {failed},\n  \
         \"deadline_misses\": {deadline_misses},\n  \
         \"breaker_transitions\": {transitions},\n  \
         \"fallback_rate\": {fallback_rate:.6},\n  \
         \"jobs_per_simulated_sec\": {jobs_per_sim_sec:.3},\n  \
         \"p50_latency_cycles\": {p50},\n  \
         \"p99_latency_cycles\": {p99},\n  \
         \"recovery\": {{\n    \
         \"kill_recover_cycles\": {},\n    \
         \"jobs_recovered\": {jobs_recovered},\n    \
         \"resumed_from_checkpoint\": {resumed},\n    \
         \"torn_tails\": {torn_tails},\n    \
         \"digest_matches\": {digest_matches},\n    \
         \"digest_mismatches\": 0\n  }},\n  \
         \"overload\": {overload_block},\n  \
         \"per_seed\": [\n{per_seed}\n  ]\n}}\n",
        clock_hz / 1e6,
        recovery_rows.len(),
    );
    std::fs::write("BENCH_service.json", &json)?;

    println!();
    println!(
        "total: {served}/{submitted} served ({cancelled} cancelled, {failed} failed), \
         {deadline_misses} deadline miss(es)"
    );
    println!(
        "latency p50 {p50} / p99 {p99} simulated cycles; \
         {jobs_per_sim_sec:.1} jobs per simulated second; \
         fallback rate {fallback_rate:.3}"
    );
    println!(
        "recovery: {jobs_recovered} jobs re-admitted across {} kill/recover \
         cycle(s), {resumed} resumed from a checkpoint, {torn_tails} torn \
         tail(s), every digest bit-identical",
        recovery_rows.len()
    );
    println!(
        "wrote BENCH_service.json in {:.2}s of wall time",
        wall.elapsed().as_secs_f64()
    );
    Ok(())
}
