//! Elastic reconfiguration in action: the same physical 8x8 array is
//! decomposed differently for differently shaped grids, and every
//! decomposition produces bit-identical Jacobi results.
//!
//! Run with: `cargo run --release --example elastic_reconfig`

use fdm::boundary::DirichletBoundary;
use fdm::pde::LaplaceProblem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_estimate;
use fdmax::sim::DetailedSim;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = FdmaxConfig::paper_default();

    println!(
        "physical array: {}x{} PEs; available decompositions:",
        cfg.pe_rows, cfg.pe_cols
    );
    for e in ElasticConfig::options(&cfg) {
        println!("  {e}  (sub-FIFO depth {})", e.sub_fifo_depth(&cfg));
    }

    println!("\nplanner choices and per-iteration cycles by grid shape:");
    println!(
        "{:<14} {:>12} {:>14} {:>22}",
        "grid", "chosen", "cycles/iter", "vs worst option"
    );
    for (rows, cols) in [(64usize, 4_096usize), (512, 512), (4_096, 64), (8_192, 24)] {
        let chosen = ElasticConfig::plan(&cfg, rows, cols);
        let best = iteration_estimate(&cfg, &chosen, rows, cols, false).effective_cycles();
        let worst = ElasticConfig::options(&cfg)
            .into_iter()
            .map(|e| iteration_estimate(&cfg, &e, rows, cols, false).effective_cycles())
            .max()
            .expect("options nonempty");
        println!(
            "{:<14} {:>12} {:>14} {:>21.2}x",
            format!("{rows}x{cols}"),
            chosen.to_string(),
            best,
            worst as f64 / best as f64
        );
    }

    // Functional invariance: all decompositions compute the same thing.
    let problem = LaplaceProblem::builder(48, 48)
        .boundary(DirichletBoundary::sine_top(1.0))
        .build()?
        .discretize::<f32>();
    let mut reference = None;
    println!("\nrunning 10 Jacobi iterations of a 48x48 Laplace under every decomposition:");
    for e in ElasticConfig::options(&cfg) {
        let mut sim = DetailedSim::with_elastic(cfg, &problem, HwUpdateMethod::Jacobi, e)
            .expect("valid decomposition");
        for _ in 0..10 {
            sim.step();
        }
        let checksum: f64 = sim.solution().as_slice().iter().map(|&v| v as f64).sum();
        println!(
            "  {e}: checksum {checksum:.10}, {} compute cycles",
            sim.counters().cycles
        );
        match &reference {
            None => reference = Some(sim.solution().clone()),
            Some(r) => assert_eq!(
                r,
                sim.solution(),
                "decomposition {e} changed the numerical result"
            ),
        }
    }
    println!("\nall decompositions bit-identical: OK");
    Ok(())
}
