//! Steady flow with a source and a sink (Poisson equation) on FDMAX,
//! cross-validated three ways: the accelerator, the software Gauss-Seidel
//! solver, and the conjugate-gradient solution of the assembled sparse
//! system.
//!
//! Run with: `cargo run --release --example poisson_steady_flow`

use fdm::convergence::StopCondition;
use fdm::pde::PoissonProblem;
use fdm::solver::krylov::conjugate_gradient;
use fdm::solver::{solve, UpdateMethod};
use fdm::sparse::StencilSystem;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let n = 64;
    let h = 1.0 / (n - 1) as f64;

    // A source in the lower-left quadrant, a sink in the upper-right:
    // steady flow from one to the other.
    let source = |x: f64, y: f64| {
        let blob = |cx: f64, cy: f64| {
            let dx = x - cx;
            let dy = y - cy;
            (-(dx * dx + dy * dy) / 0.01).exp()
        };
        -30.0 * blob(0.3, 0.7) + 30.0 * blob(0.7, 0.3)
    };
    let problem = PoissonProblem::builder(n, n)
        .spacing(h, h)
        .source_fn(source)
        .stop(1e-6, 2_000_000)
        .build()?;

    // 1. FDMAX (f32, cycle-accurate).
    let sp32 = problem.discretize::<f32>();
    let accel = Accelerator::new(FdmaxConfig::paper_default())?;
    let hw = accel
        .solve(&sp32, HwUpdateMethod::Hybrid)
        .expect("valid problem");
    println!(
        "FDMAX-H:      {} iterations, {:.3} ms, {:.3} mJ ({})",
        hw.iterations,
        hw.report.seconds() * 1e3,
        hw.report.energy_joules() * 1e3,
        hw.report.elastic()
    );

    // 2. Software Gauss-Seidel in f64.
    let sp64 = problem.discretize::<f64>();
    let gs = solve(
        &sp64,
        UpdateMethod::GaussSeidel,
        &StopCondition::tolerance(1e-8, 2_000_000),
    );
    println!(
        "Gauss-Seidel: {} iterations (f64, software)",
        gs.iterations()
    );

    // 3. CG on the assembled sparse system.
    let sys = StencilSystem::assemble(&sp64).expect("grid has an interior");
    let cg = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
    println!(
        "CG:           {} iterations on A u = b ({} unknowns, {} nonzeros)",
        cg.iterations,
        sys.matrix.rows(),
        sys.matrix.nnz()
    );
    let cg_grid = sys.to_grid(&cg.solution, &sp64.initial);

    // All three must agree up to solver tolerances + f32 rounding.
    let hw64 = hw.solution.convert::<f64>();
    let d_hw_gs = hw64.diff_max(gs.solution());
    let d_gs_cg = gs.solution().diff_max(&cg_grid);
    println!("\nmax |FDMAX - GS| = {d_hw_gs:.3e} (f32 vs f64 rounding)");
    println!("max |GS - CG|    = {d_gs_cg:.3e}");
    assert!(d_hw_gs < 1e-3, "accelerator disagrees with software");
    assert!(d_gs_cg < 1e-6, "stationary and Krylov solvers disagree");

    // Where does the flow stagnate? The saddle between source and sink.
    let mid = hw.solution[(n / 2, n / 2)];
    println!("\npotential at the midpoint: {mid:.4} (between source + and sink -)");
    Ok(())
}
