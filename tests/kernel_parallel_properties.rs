//! Property test pinning the strip-parallel engine to the serial sweeps.
//!
//! [`ParallelSweepEngine`] promises *bit-identical* fields **and**
//! residual norms to the serial [`SweepEngine`] for the parity-free
//! methods (Jacobi and Checkerboard) at any thread count. This suite
//! hammers that promise with deterministic randomness ([`DetRng`]):
//! every benchmark PDE family, both working precisions, random grid
//! shapes including the degenerate single-interior-row/column cases,
//! and thread counts that divide the interior evenly, unevenly, and
//! not at all.

use detrng::DetRng;
use fdm::engine::{ParallelSweepEngine, SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::pde::{OffsetField, PdeKind, RunMode, StencilProblem};
use fdm::precision::Scalar;
use fdm::solver::UpdateMethod;
use fdm::stencil::FivePointStencil;

const THREADS: [usize; 4] = [1, 2, 4, 7];
const METHODS: [UpdateMethod; 2] = [UpdateMethod::Jacobi, UpdateMethod::Checkerboard];
const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

fn random_grid<T: Scalar>(rng: &mut DetRng, rows: usize, cols: usize) -> Grid2D<T> {
    Grid2D::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_f64(-1.0, 1.0)))
}

/// Builds a random problem of the given family directly from parts, so
/// the test controls the exact shape (the builders clamp small grids).
fn random_problem<T: Scalar>(
    rng: &mut DetRng,
    kind: PdeKind,
    rows: usize,
    cols: usize,
) -> StencilProblem<T> {
    let (stencil, offset, prev_initial) = match kind {
        PdeKind::Laplace => (
            FivePointStencil::new(0.25, 0.25, 0.0),
            OffsetField::None,
            None,
        ),
        PdeKind::Poisson => (
            FivePointStencil::new(0.25, 0.25, 0.0),
            OffsetField::Static(random_grid(rng, rows, cols)),
            None,
        ),
        PdeKind::Heat => (
            FivePointStencil::new(0.2, 0.2, 0.15),
            OffsetField::None,
            None,
        ),
        PdeKind::Wave => (
            FivePointStencil::new(0.4, 0.4, 1.2),
            OffsetField::ScaledPrevField {
                scale: T::from_f64(-1.0),
            },
            Some(random_grid(rng, rows, cols)),
        ),
    };
    StencilProblem {
        kind,
        stencil: FivePointStencil::new(
            T::from_f64(stencil.w_v),
            T::from_f64(stencil.w_h),
            T::from_f64(stencil.w_s),
        ),
        offset,
        initial: random_grid(rng, rows, cols),
        prev_initial,
        mode: RunMode::FixedSteps(8),
    }
}

fn assert_grids_bit_identical<T: Scalar>(a: &Grid2D<T>, b: &Grid2D<T>, what: &str) {
    assert_eq!(a.rows(), b.rows(), "{what}: row count");
    assert_eq!(a.cols(), b.cols(), "{what}: col count");
    for (idx, (x, y)) in a.as_slice().iter().zip(b.as_slice()).enumerate() {
        // `to_f64` widens exactly, so f64 bit equality is bit equality
        // in the source precision.
        assert_eq!(
            x.to_f64().to_bits(),
            y.to_f64().to_bits(),
            "{what}: element {idx}: {} vs {}",
            x.to_f64(),
            y.to_f64()
        );
    }
}

/// Steps both engines in lockstep, asserting bit-identical norms after
/// every step and a bit-identical field at the end.
fn check_lockstep<T: Scalar>(sp: &StencilProblem<T>, method: UpdateMethod, threads: usize) {
    let steps = 6;
    let mut serial = SweepEngine::new(sp, method);
    let mut parallel = ParallelSweepEngine::new(sp, method, threads);
    for step in 0..steps {
        let s = serial.step();
        let p = parallel.step();
        let what = format!(
            "{:?} {method:?} {}x{} threads={threads} step={step}",
            sp.kind,
            sp.initial.rows(),
            sp.initial.cols()
        );
        match (s.norm, p.norm) {
            (Some(sn), Some(pn)) => {
                assert_eq!(sn.to_bits(), pn.to_bits(), "{what}: norm {sn} vs {pn}");
            }
            (s, p) => panic!("{what}: norm presence mismatch: {s:?} vs {p:?}"),
        }
        assert_grids_bit_identical(serial.solution(), parallel.solution(), &what);
    }
    assert_eq!(serial.iterations(), steps);
    assert_eq!(parallel.iterations(), steps);
}

fn run_shape_sweep<T: Scalar>(rng: &mut DetRng) {
    for kind in KINDS {
        // Random interior shapes plus the degenerate strips: a 3-row grid
        // has a single interior row (every band is "thin"), and a 3-column
        // grid a single interior column.
        let n = rng.gen_range(3, 40);
        let m = rng.gen_range(3, 40);
        let shapes = [(rng.gen_range(3, 40), rng.gen_range(3, 40)), (3, n), (m, 3)];
        for (rows, cols) in shapes {
            let sp: StencilProblem<T> = random_problem(rng, kind, rows, cols);
            for method in METHODS {
                for threads in THREADS {
                    check_lockstep(&sp, method, threads);
                }
            }
        }
    }
}

#[test]
fn parallel_sweeps_are_bit_identical_to_serial_f64() {
    let mut rng = DetRng::seed_from_u64(0xFD_AC_5E_01);
    for _ in 0..3 {
        run_shape_sweep::<f64>(&mut rng);
    }
}

#[test]
fn parallel_sweeps_are_bit_identical_to_serial_f32() {
    let mut rng = DetRng::seed_from_u64(0xFD_AC_5E_02);
    for _ in 0..3 {
        run_shape_sweep::<f32>(&mut rng);
    }
}

/// `row_bands_with_min` never emits a band narrower than the requested
/// tile halo: across a random space of grid heights, band counts and
/// tile depths the split (a) covers the interior exactly once in order,
/// (b) keeps every band at least `min(min_height, interior)` rows tall,
/// and (c) degrades gracefully — never more bands than requested, and
/// identical to `row_bands` when the floor is trivial.
#[test]
fn banding_respects_the_tile_halo_floor() {
    use fdm::kernels::{row_bands, row_bands_with_min};

    let mut rng = DetRng::seed_from_u64(0xFD_AC_5E_03);
    for _ in 0..2_000 {
        let rows = rng.gen_range(0, 70);
        let max_bands = rng.gen_range(1, 12);
        let min_height = rng.gen_range(1, 12);
        let interior = rows.saturating_sub(2);
        let bands = row_bands_with_min(rows, max_bands, min_height);
        let what = format!("rows={rows} max_bands={max_bands} min_height={min_height}");

        if interior == 0 {
            assert!(bands.is_empty(), "{what}: no interior, no bands");
            continue;
        }
        // Exact ordered cover of the interior 1..rows-1.
        let mut next = 1usize;
        for band in &bands {
            assert_eq!(band.start, next, "{what}: bands are contiguous");
            assert!(band.end > band.start, "{what}: bands are non-empty");
            next = band.end;
        }
        assert_eq!(next, rows - 1, "{what}: the cover is exact");
        // The halo floor: every band holds a full k-trapezoid (or the
        // whole interior, when the interior itself is shorter).
        let floor = min_height.min(interior);
        assert!(
            bands.iter().all(|b| b.len() >= floor),
            "{what}: a band fell below the halo floor: {bands:?}"
        );
        assert!(bands.len() <= max_bands, "{what}: over-split");
        if min_height <= 1 {
            assert_eq!(bands, row_bands(rows, max_bands), "{what}: trivial floor");
        }
    }
}
