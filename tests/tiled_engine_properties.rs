//! Property test pinning the temporally tiled engine to the serial
//! sweeps.
//!
//! [`TiledSweepEngine`] fuses `k` whole sweeps per cache pass over a
//! skewed row wavefront. Its documented contract is *tolerance*
//! equivalence to the serial [`SweepEngine`] (the wavefront may in
//! principle regroup the diff² reduction), tightening to **bit**
//! identity at `k = 1`, plus exact iteration accounting: a step
//! advances the counter by a whole epoch, truncated only by an
//! iteration cap. This suite hammers all three promises with
//! deterministic randomness ([`DetRng`]): every benchmark PDE family,
//! both working precisions, degenerate shapes (3-row interiors,
//! non-square grids), tile depths 1/2/4/8 and band counts that divide
//! the interior evenly, unevenly and not at all.

use detrng::DetRng;
use fdm::engine::{SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::pde::{OffsetField, PdeKind, RunMode, StencilProblem};
use fdm::precision::Scalar;
use fdm::solver::UpdateMethod;
use fdm::stencil::FivePointStencil;
use fdm::tiled::TiledSweepEngine;

const DEPTHS: [usize; 4] = [1, 2, 4, 8];
const THREADS: [usize; 3] = [1, 2, 7];
const METHODS: [UpdateMethod; 2] = [UpdateMethod::Jacobi, UpdateMethod::Checkerboard];
const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

fn random_grid<T: Scalar>(rng: &mut DetRng, rows: usize, cols: usize) -> Grid2D<T> {
    Grid2D::from_fn(rows, cols, |_, _| T::from_f64(rng.gen_f64(-1.0, 1.0)))
}

/// Builds a random problem of the given family directly from parts, so
/// the test controls the exact shape (the builders clamp small grids).
fn random_problem<T: Scalar>(
    rng: &mut DetRng,
    kind: PdeKind,
    rows: usize,
    cols: usize,
) -> StencilProblem<T> {
    let (stencil, offset, prev_initial) = match kind {
        PdeKind::Laplace => (
            FivePointStencil::new(0.25, 0.25, 0.0),
            OffsetField::None,
            None,
        ),
        PdeKind::Poisson => (
            FivePointStencil::new(0.25, 0.25, 0.0),
            OffsetField::Static(random_grid(rng, rows, cols)),
            None,
        ),
        PdeKind::Heat => (
            FivePointStencil::new(0.2, 0.2, 0.15),
            OffsetField::None,
            None,
        ),
        PdeKind::Wave => (
            FivePointStencil::new(0.4, 0.4, 1.2),
            OffsetField::ScaledPrevField {
                scale: T::from_f64(-1.0),
            },
            Some(random_grid(rng, rows, cols)),
        ),
    };
    StencilProblem {
        kind,
        stencil: FivePointStencil::new(
            T::from_f64(stencil.w_v),
            T::from_f64(stencil.w_h),
            T::from_f64(stencil.w_s),
        ),
        offset,
        initial: random_grid(rng, rows, cols),
        prev_initial,
        mode: RunMode::FixedSteps(8),
    }
}

/// Relative (or, near zero, absolute) f64 distance between two scalars.
fn rel_err(a: f64, b: f64) -> f64 {
    let denom = a.abs().max(b.abs()).max(1.0);
    (a - b).abs() / denom
}

/// Asserts the tiled field matches the serial one within `tol`
/// relative error — and bitwise when `tol` is zero.
fn assert_fields_equivalent<T: Scalar>(tiled: &Grid2D<T>, serial: &Grid2D<T>, tol: f64, what: &str) {
    assert_eq!(tiled.rows(), serial.rows(), "{what}: row count");
    assert_eq!(tiled.cols(), serial.cols(), "{what}: col count");
    for (idx, (x, y)) in tiled.as_slice().iter().zip(serial.as_slice()).enumerate() {
        let (x, y) = (x.to_f64(), y.to_f64());
        if tol == 0.0 {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "{what}: element {idx}: {x} vs {y}"
            );
        } else {
            let e = rel_err(x, y);
            assert!(e <= tol, "{what}: element {idx}: {x} vs {y} (rel {e:.3e})");
        }
    }
}

/// Runs the tiled engine for three epochs against a serial engine fed
/// the same sweep count, checking field equivalence, norm equivalence
/// and exact epoch-quantized iteration accounting after every step.
fn check_epochs<T: Scalar>(
    sp: &StencilProblem<T>,
    method: UpdateMethod,
    k: usize,
    threads: usize,
    tol: f64,
) {
    let mut serial = SweepEngine::new(sp, method);
    let mut tiled = TiledSweepEngine::new(sp, method, k, threads);
    // k = 1 epochs are plain sweeps: the engine owes bit identity.
    let tol = if k == 1 { 0.0 } else { tol };
    for epoch in 0..3 {
        let t = tiled.step();
        let mut s = serial.step();
        for _ in 1..k {
            s = serial.step();
        }
        let what = format!(
            "{:?} {method:?} {}x{} k={k} threads={threads} epoch={epoch}",
            sp.kind,
            sp.initial.rows(),
            sp.initial.cols()
        );
        assert_eq!(
            tiled.iterations(),
            (epoch + 1) * k,
            "{what}: an uncapped step is exactly one whole epoch"
        );
        assert_eq!(serial.iterations(), tiled.iterations(), "{what}: lockstep");
        match (t.norm, s.norm) {
            (Some(tn), Some(sn)) if tol == 0.0 => {
                assert_eq!(tn.to_bits(), sn.to_bits(), "{what}: norm {tn} vs {sn}");
            }
            (Some(tn), Some(sn)) => {
                let e = rel_err(tn, sn);
                assert!(e <= tol, "{what}: norm {tn} vs {sn} (rel {e:.3e})");
            }
            (t, s) => panic!("{what}: norm presence mismatch: {t:?} vs {s:?}"),
        }
        assert_fields_equivalent(tiled.solution(), serial.solution(), tol, &what);
    }
}

fn run_shape_sweep<T: Scalar>(rng: &mut DetRng, tol: f64) {
    for kind in KINDS {
        // Random interior shapes plus the degenerate strips: a 3-row
        // grid has a single interior row (the halo clamps to it), and a
        // deliberately non-square tall/wide pair.
        let n = rng.gen_range(4, 40);
        let m = rng.gen_range(4, 40);
        let shapes = [(rng.gen_range(3, 40), rng.gen_range(3, 40)), (3, n), (m, 4)];
        for (rows, cols) in shapes {
            let sp: StencilProblem<T> = random_problem(rng, kind, rows, cols);
            for method in METHODS {
                for k in DEPTHS {
                    for threads in THREADS {
                        check_epochs(&sp, method, k, threads, tol);
                    }
                }
            }
        }
    }
}

#[test]
fn tiled_epochs_are_tolerance_equivalent_to_serial_f64() {
    let mut rng = DetRng::seed_from_u64(0xFD_71_1E_01);
    for _ in 0..2 {
        run_shape_sweep::<f64>(&mut rng, 1e-12);
    }
}

#[test]
fn tiled_epochs_are_tolerance_equivalent_to_serial_f32() {
    let mut rng = DetRng::seed_from_u64(0xFD_71_1E_02);
    for _ in 0..2 {
        // f32 carries ~7 significant digits; the contract scales with
        // the working precision.
        run_shape_sweep::<f32>(&mut rng, 1e-5);
    }
}

/// An iteration cap truncates the final epoch exactly: the counter
/// climbs in whole epochs and lands on the cap, never past it.
#[test]
fn iteration_cap_accounting_is_exact() {
    let mut rng = DetRng::seed_from_u64(0xFD_71_1E_03);
    for _ in 0..20 {
        let rows = rng.gen_range(5, 24);
        let cols = rng.gen_range(5, 24);
        let k = DEPTHS[rng.gen_range(0, DEPTHS.len())];
        let cap = rng.gen_range(1, 20);
        let sp: StencilProblem<f64> = random_problem(&mut rng, PdeKind::Laplace, rows, cols);
        let mut tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, k, 2)
            .with_iteration_cap(cap);
        let mut expected = 0usize;
        while expected < cap {
            tiled.step();
            expected = (expected + k).min(cap);
            assert_eq!(
                tiled.iterations(),
                expected,
                "rows={rows} cols={cols} k={k} cap={cap}"
            );
        }
        // The capped field is exactly `cap` serial sweeps.
        let mut serial = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        for _ in 0..cap {
            serial.step();
        }
        assert_fields_equivalent(
            tiled.solution(),
            serial.solution(),
            1e-12,
            &format!("capped rows={rows} cols={cols} k={k} cap={cap}"),
        );
    }
}
