//! Cross-validation of the closed-form performance model against the
//! cycle-accurate simulator: cycles AND every event class, exactly.

use detrng::DetRng;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::{iteration_counters, iteration_estimate, solve_estimate};
use fdmax::sim::DetailedSim;

fn problem(kind: PdeKind, n: usize) -> StencilProblem<f32> {
    benchmark_problem(kind, n, 3).expect("valid benchmark")
}

#[test]
fn counters_exact_for_all_pdes_configs_and_odd_shapes() {
    // Odd widths/sizes exercise partial batches, partial blocks, and the
    // w=1-adjacent halo edge cases.
    let mut shapes = Vec::new();
    for kind in PdeKind::ALL {
        for n in [17usize, 31, 64] {
            shapes.push((kind, n));
        }
    }
    let cfg = FdmaxConfig::paper_default();
    for (kind, n) in shapes {
        let sp = problem(kind, n);
        for e in ElasticConfig::options(&cfg) {
            let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
            sim.step();
            let predicted = iteration_counters(
                &cfg,
                &e,
                n,
                n,
                sp.offset.requires_buffer(),
                sp.stencil.w_s != 0.0,
            );
            assert_eq!(*sim.counters(), predicted, "{kind} {n}x{n} on {e}");
        }
    }
}

#[test]
fn counters_exact_for_narrow_arrays() {
    // A 2x1 physical array gives chain widths 1 and 2 — the degenerate
    // halo paths (every column is a seam at width 1).
    let mut cfg = FdmaxConfig::paper_default();
    cfg.pe_rows = 2;
    cfg.pe_cols = 1;
    let sp = problem(PdeKind::Poisson, 11);
    for e in ElasticConfig::options(&cfg) {
        let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
        sim.step();
        let predicted = iteration_counters(&cfg, &e, 11, 11, true, false);
        assert_eq!(*sim.counters(), predicted, "narrow array on {e}");
    }
}

#[test]
fn multi_iteration_counters_scale_linearly() {
    let cfg = FdmaxConfig::paper_default();
    let sp = problem(PdeKind::Heat, 25);
    let e = ElasticConfig::plan(&cfg, 25, 25);
    let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
    for _ in 0..4 {
        sim.step();
    }
    let per = iteration_counters(&cfg, &e, 25, 25, false, true);
    assert_eq!(*sim.counters(), per.scaled(4), "iterations are identical");
}

#[test]
fn solve_estimate_matches_simulated_run_cycles() {
    use fdm::convergence::StopCondition;
    let cfg = FdmaxConfig::paper_default();
    let sp = problem(PdeKind::Laplace, 40);
    let e = ElasticConfig::plan(&cfg, 40, 40);
    let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
    sim.run(&StopCondition::fixed_steps(12));
    let est = solve_estimate(&cfg, &e, 40, 40, false, 12);
    assert_eq!(sim.counters().cycles, est.total_cycles);
    assert!((est.seconds - est.total_cycles as f64 / cfg.clock_hz).abs() < 1e-15);
}

#[test]
fn dram_traffic_switches_off_when_resident() {
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    let resident = iteration_estimate(&cfg, &e, 30, 30, false);
    assert_eq!(resident.dram_read_elements, 0);
    let streamed = iteration_estimate(&cfg, &e, 40, 40, false);
    assert!(streamed.dram_read_elements >= 40 * 40);
    assert_eq!(streamed.dram_write_elements, 38 * 38);
}

/// Counter exactness holds across random grid shapes, PDE kinds and
/// elastic decompositions.
#[test]
fn counters_exact_on_random_shapes() {
    let mut rng = DetRng::seed_from_u64(0xc0b01);
    for _ in 0..10 {
        let rows = rng.gen_range(5, 50);
        let cols = rng.gen_range(5, 50);
        let kind_idx = rng.gen_range(0, 4);
        let cfg_idx = rng.gen_range(0, 4);
        let kind = PdeKind::ALL[kind_idx];
        let cfg = FdmaxConfig::paper_default();
        let e = ElasticConfig::options(&cfg)[cfg_idx];
        // Build a non-square benchmark by hand via Laplace-style weights.
        let sp: StencilProblem<f32> = match kind {
            _ if rows == cols => benchmark_problem(kind, rows, 2).unwrap(),
            _ => {
                // Non-square: use a Laplace problem of that shape.
                use fdm::boundary::DirichletBoundary;
                use fdm::pde::LaplaceProblem;
                LaplaceProblem::builder(rows, cols)
                    .boundary(DirichletBoundary::hot_top(1.0))
                    .build()
                    .unwrap()
                    .discretize()
            }
        };
        let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
        sim.step();
        let predicted = iteration_counters(
            &cfg,
            &e,
            sp.rows(),
            sp.cols(),
            sp.offset.requires_buffer(),
            sp.stencil.w_s != 0.0,
        );
        assert_eq!(*sim.counters(), predicted);
    }
}
