//! End-to-end contracts of the fault-injection and graceful-degradation
//! layer:
//!
//! 1. **Deterministic replay** — the same campaign seed produces a
//!    bit-identical fault trace (digest equality) and an identical
//!    [`SolveOutcome`] across runs;
//! 2. **Recovery convergence** — under an active campaign with recovery
//!    enabled, solves converge after rollback/retry/fallback, or return a
//!    structured [`FdmaxError`] — never a panic;
//! 3. **No-fault bit-exactness** — with injection disabled, the
//!    simulator stack is bit-identical to the software reference, and
//!    every resilience counter stays zero.

use fdm::boundary::DirichletBoundary;
use fdm::convergence::StopCondition;
use fdm::pde::{LaplaceProblem, StencilProblem};
use fdm::solver::{solve, UpdateMethod};
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::resilience::{FdmaxError, ResiliencePolicy};
use fdmax::sim::DetailedSim;
use memmodel::faults::{EccMode, FaultCampaign};

fn problem() -> StencilProblem<f32> {
    LaplaceProblem::builder(28, 28)
        .boundary(DirichletBoundary::hot_top(1.0))
        .stop(1e-4, 100_000)
        .build()
        .expect("valid problem")
        .discretize::<f32>()
}

fn parity_campaign(seed: u64) -> FaultCampaign {
    FaultCampaign {
        seed,
        sram_flips_per_iteration: 0.02,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.0,
        max_dma_retries: 4,
        dma_backoff_cycles: 16,
    }
}

#[test]
fn same_seed_replays_bit_identically() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let policy = ResiliencePolicy {
        max_retries: 10_000,
        ..ResiliencePolicy::default()
    };
    let run = || {
        accel
            .solve_resilient(
                &sp,
                HwUpdateMethod::Jacobi,
                &stop,
                parity_campaign(0xfd),
                &policy,
            )
            .expect("recovers")
    };
    let a = run();
    let b = run();
    // Identical fault schedule...
    assert!(a.recovery.fault_trace_digest.is_some());
    assert_eq!(a.recovery.fault_trace_digest, b.recovery.fault_trace_digest);
    // ...identical recovery actions...
    assert_eq!(a.recovery, b.recovery);
    // ...and an identical outcome, bit for bit.
    assert_eq!(a.solution, b.solution);
    assert_eq!(a.iterations, b.iterations);
    assert_eq!(a.converged, b.converged);
    assert_eq!(a.report.counters(), b.report.counters());
}

#[test]
fn different_seeds_draw_different_schedules() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let policy = ResiliencePolicy {
        max_retries: 10_000,
        ..ResiliencePolicy::default()
    };
    let digest = |seed: u64| {
        accel
            .solve_resilient(
                &sp,
                HwUpdateMethod::Jacobi,
                &stop,
                parity_campaign(seed),
                &policy,
            )
            .expect("recovers")
            .recovery
            .fault_trace_digest
    };
    assert_ne!(digest(1), digest(2));
}

#[test]
fn recovered_solve_converges_to_the_clean_answer() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let policy = ResiliencePolicy {
        max_retries: 10_000,
        ..ResiliencePolicy::default()
    };
    let outcome = accel
        .solve_resilient(
            &sp,
            HwUpdateMethod::Jacobi,
            &stop,
            parity_campaign(0xbeef),
            &policy,
        )
        .expect("recovers");
    assert!(outcome.converged, "converges despite injected corruption");
    assert!(
        outcome.recovery.faults_injected > 0,
        "campaign actually fired"
    );
    assert_eq!(outcome.recovery.rollbacks, outcome.recovery.faults_detected);
    // Parity + rollback discards every corrupted iteration, so the final
    // field is the clean fixed point bit for bit.
    let clean = accel
        .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
        .expect("valid problem");
    assert_eq!(outcome.solution, clean.solution);
    // Recovery costs show up in the timing ledger.
    assert!(outcome.report.cycles() > clean.report.cycles());
}

#[test]
fn dma_retries_are_charged_and_survivable() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    // A 40x40 grid does not fit the 1024-element buffers, so every
    // iteration streams DRAM and is exposed to DMA faults.
    let sp = LaplaceProblem::builder(40, 40)
        .boundary(DirichletBoundary::hot_top(1.0))
        .stop(1e-4, 100_000)
        .build()
        .expect("valid problem")
        .discretize::<f32>();
    let stop = StopCondition::from_mode(&sp.mode);
    let campaign = FaultCampaign {
        seed: 77,
        sram_flips_per_iteration: 0.0,
        ecc: EccMode::None,
        dma_failure_prob: 0.02,
        max_dma_retries: 6,
        dma_backoff_cycles: 16,
    };
    let outcome = accel
        .solve_resilient(
            &sp,
            HwUpdateMethod::Jacobi,
            &stop,
            campaign,
            &ResiliencePolicy::default(),
        )
        .expect("retries absorb transient DMA faults");
    assert!(outcome.converged);
    assert!(
        outcome.recovery.dma_retries > 0,
        "the flaky bus actually retried"
    );
    let clean = accel
        .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
        .expect("valid problem");
    assert_eq!(
        outcome.solution, clean.solution,
        "retries never corrupt data"
    );
    assert!(
        outcome.report.cycles() > clean.report.cycles(),
        "retries cost time"
    );
}

#[test]
fn disabled_campaign_is_bit_exact_with_zero_resilience_counters() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let hw = accel
        .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
        .expect("valid problem");
    let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
    assert_eq!(&hw.solution, sw.solution(), "bit-exact vs software");
    assert_eq!(hw.iterations, sw.iterations());
    let c = hw.report.counters();
    assert_eq!(c.faults_injected, 0);
    assert_eq!(c.faults_detected, 0);
    assert_eq!(c.faults_corrected, 0);
    assert_eq!(c.dma_retries, 0);
    assert_eq!(c.checkpoints, 0);
    assert_eq!(c.rollbacks, 0);
    assert_eq!(c.fallbacks, 0);
    assert_eq!(c.fifo_backpressure_stalls, 0);
    assert!(hw.recovery.is_clean());
}

#[test]
fn silent_corruption_self_heals_under_jacobi() {
    // With no ECC and no detection, Jacobi's contraction property washes
    // transient interior upsets out on its own — the solve converges
    // without a single recovery action.
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let mut sim = DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi)
        .expect("valid problem");
    sim.enable_faults(FaultCampaign {
        seed: 5,
        sram_flips_per_iteration: 0.05,
        ecc: EccMode::None,
        dma_failure_prob: 0.0,
        max_dma_retries: 0,
        dma_backoff_cycles: 0,
    });
    let met = sim
        .run_resilient(&stop, &ResiliencePolicy::default())
        .expect("silent upsets are survivable");
    assert!(met);
    assert!(sim.counters().faults_injected > 0);
    assert_eq!(sim.counters().faults_detected, 0, "no ECC, no detection");
    let _ = accel;
}

#[test]
fn hopeless_campaign_returns_structured_error_not_panic() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    let campaign = FaultCampaign {
        seed: 9,
        sram_flips_per_iteration: 5.0,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.0,
        max_dma_retries: 0,
        dma_backoff_cycles: 0,
    };
    // No fallbacks allowed and a tiny retry budget: the solve must fail
    // with a structured error.
    let policy = ResiliencePolicy {
        max_retries: 2,
        allow_method_fallback: false,
        allow_software_fallback: false,
        ..ResiliencePolicy::default()
    };
    let err = accel
        .solve_resilient(&sp, HwUpdateMethod::Jacobi, &stop, campaign, &policy)
        .unwrap_err();
    assert!(
        matches!(
            err,
            FdmaxError::RetriesExhausted { .. } | FdmaxError::CorruptionDetected { .. }
        ),
        "unexpected error: {err}"
    );
}

#[test]
fn exhausted_rollback_error_names_checkpoint_and_fault_trace() {
    // When rollback-and-retry gives up, the error must say where the
    // last good checkpoint was and which fault schedule did the damage
    // (the trace digest), so an operator can replay the exact failure.
    let accel = Accelerator::new(FdmaxConfig::paper_default()).expect("valid config");
    let sp = problem();
    let stop = StopCondition::from_mode(&sp.mode);
    // Sparse flips so the solve survives several checkpoint windows
    // before the retry budget runs dry.
    let campaign = FaultCampaign {
        seed: 0x51,
        sram_flips_per_iteration: 0.2,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.0,
        max_dma_retries: 0,
        dma_backoff_cycles: 0,
    };
    let policy = ResiliencePolicy {
        max_retries: 1,
        allow_method_fallback: false,
        allow_software_fallback: false,
        ..ResiliencePolicy::default()
    };
    let err = accel
        .solve_resilient(&sp, HwUpdateMethod::Jacobi, &stop, campaign, &policy)
        .unwrap_err();
    let FdmaxError::RetriesExhausted {
        attempts,
        checkpoint_iteration,
        fault_trace_digest,
    } = err
    else {
        panic!("expected RetriesExhausted, got {err}");
    };
    assert!(attempts >= 1, "at least one rollback was attempted");
    assert_eq!(
        checkpoint_iteration % policy.checkpoint_interval,
        0,
        "the rollback target is a checkpoint boundary"
    );
    let digest = fault_trace_digest.expect("an active campaign leaves a trace");
    // The digest is the same one a bare simulator run under the same
    // campaign accumulates up to the point of death — replayable.
    let mut sim = DetailedSim::new(FdmaxConfig::paper_default(), &sp, HwUpdateMethod::Jacobi)
        .expect("valid problem");
    sim.enable_faults(campaign);
    let replay = sim.run_resilient(&stop, &policy).unwrap_err();
    assert_eq!(
        replay,
        FdmaxError::RetriesExhausted {
            attempts,
            checkpoint_iteration,
            fault_trace_digest: Some(digest),
        },
        "the failure replays exactly, payload included"
    );
}
