//! Sanity and ordering properties of the baseline platform models and
//! the evaluation harness — the qualitative shape of Fig. 7 and Fig. 8.

use baselines::bitserial::table2;
use baselines::cpu::CpuModel;
use baselines::gpu::GpuModel;
use baselines::platform::{Platform, WorkloadSpec};
use baselines::spmv_accel::SpmvAcceleratorModel;
use fdm::pde::PdeKind;
use fdmax::config::FdmaxConfig;
use fdmax_bench::{evaluate_point, fdmax_run, geomean, IterationBudget};

#[test]
fn per_iteration_platform_ordering_on_time_stepped_workloads() {
    // For Heat/Wave every platform runs the same step count, so the bars
    // are pure per-iteration speed: CPU << MemAccel/Alrescha < FDMAX,
    // with the GPU in between depending on size.
    let cfg = FdmaxConfig::paper_default();
    for n in [100usize, 1_000] {
        let iters = 100;
        let spec = WorkloadSpec::new(PdeKind::Heat, n, iters);
        let cpu = CpuModel::xeon_python('J').run(&spec);
        let gpu = GpuModel::rtx3090_jacobi().run(&spec);
        let mem = SpmvAcceleratorModel::memaccel().run(&spec);
        let alr = SpmvAcceleratorModel::alrescha().run(&spec);
        let fdmax = fdmax_run(&cfg, PdeKind::Heat, n, iters);
        assert!(cpu.seconds > gpu.seconds, "GPU beats CPU at n={n}");
        assert!(cpu.seconds > mem.seconds && cpu.seconds > alr.seconds);
        assert!(
            fdmax.seconds < mem.seconds && fdmax.seconds < alr.seconds,
            "FDMAX beats the SpMV accelerators at n={n}: {} vs {}/{}",
            fdmax.seconds,
            mem.seconds,
            alr.seconds
        );
        assert!(
            fdmax.seconds < cpu.seconds / 100.0,
            "orders of magnitude over CPU"
        );
    }
}

#[test]
fn fdmax_energy_beats_everything_on_time_stepped_workloads() {
    let cfg = FdmaxConfig::paper_default();
    let n = 1_000;
    let iters = 100;
    let spec = WorkloadSpec::new(PdeKind::Wave, n, iters);
    let fdmax = fdmax_run(&cfg, PdeKind::Wave, n, iters);
    for (name, metrics) in [
        ("CPU", CpuModel::xeon_python('J').run(&spec)),
        ("GPU", GpuModel::rtx3090_jacobi().run(&spec)),
        ("MemAccel", SpmvAcceleratorModel::memaccel().run(&spec)),
        ("Alrescha", SpmvAcceleratorModel::alrescha().run(&spec)),
    ] {
        assert!(
            fdmax.energy_joules < metrics.energy_joules,
            "FDMAX should be the most efficient, lost to {name}"
        );
    }
}

#[test]
fn evaluation_rows_have_consistent_normalization() {
    let cfg = FdmaxConfig::paper_default();
    let budget = IterationBudget::for_point(PdeKind::Wave, 200, 32, 40);
    let row = evaluate_point(&cfg, PdeKind::Wave, 200, budget);
    for e in &row.entries {
        // speedup * seconds = CPU-J seconds, for every platform.
        let cpu = row.entry("CPU-J").unwrap();
        let recovered = e.metrics.seconds * e.speedup_over_cpu_j;
        assert!(
            (recovered - cpu.metrics.seconds).abs() < 1e-9 * cpu.metrics.seconds,
            "{} breaks the normalization",
            e.platform
        );
        assert!(e.metrics.seconds > 0.0 && e.metrics.energy_joules > 0.0);
    }
}

#[test]
fn headline_speedup_band_on_the_heat_benchmark() {
    // The paper's CPU headline is ~1200x; our calibrated model should put
    // the Heat-equation FDMAX-vs-CPU speedup in the same order of
    // magnitude (hundreds to a few thousand).
    let cfg = FdmaxConfig::paper_default();
    let mut speedups = Vec::new();
    for n in [100usize, 1_000] {
        let iters = 200;
        let spec = WorkloadSpec::new(PdeKind::Heat, n, iters);
        let cpu = CpuModel::xeon_python('J').run(&spec);
        let fdmax = fdmax_run(&cfg, PdeKind::Heat, n, iters);
        speedups.push(cpu.seconds / fdmax.seconds);
    }
    let g = geomean(&speedups);
    assert!(
        g > 300.0 && g < 5_000.0,
        "FDMAX-over-CPU geomean {g} outside the paper's order of magnitude"
    );
}

#[test]
fn gpu_crossover_small_vs_large_grids() {
    // Fig. 7 shape: FDMAX dominates the GPU on small grids (launch
    // overhead), while the gap narrows (or reverses) at 10K x 10K.
    let cfg = FdmaxConfig::paper_default();
    let ratio = |n: usize| {
        let iters = 50;
        let spec = WorkloadSpec::new(PdeKind::Heat, n, iters);
        let gpu = GpuModel::rtx3090_jacobi().run(&spec);
        let fdmax = fdmax_run(&cfg, PdeKind::Heat, n, iters);
        gpu.seconds / fdmax.seconds
    };
    let small = ratio(100);
    let large = ratio(10_000);
    assert!(
        small > large,
        "advantage must shrink with size: {small} vs {large}"
    );
    assert!(small > 5.0, "strong win at 100x100, got {small}");
}

#[test]
fn table2_matches_paper_structure() {
    let t = table2();
    assert_eq!(t.len(), 7);
    // Paper-ordered: analog first, this work last.
    assert!(t[0].technology.contains("Analog"));
    assert_eq!(t[6].accelerator, "This work");
    assert!(t[6].update_method.contains("Jacobi"));
}

#[test]
fn krylov_baselines_pay_for_sequential_fractions() {
    // The sequential scalar chains hold both Krylov accelerators far
    // below their nominal streaming bandwidth on elliptic solves —
    // the §7.2 "cannot cover the overhead" effect.
    let spec = WorkloadSpec::new(PdeKind::Laplace, 500, 1);
    for accel in [
        SpmvAcceleratorModel::memaccel(),
        SpmvAcceleratorModel::alrescha(),
    ] {
        let effective = accel.bytes_per_iteration(&spec) / accel.seconds_per_iteration(&spec);
        assert!(
            effective < 0.3 * 128e9,
            "{}: effective rate {effective:.3e} should sit well below the 128 GB/s budget",
            accel.name()
        );
    }
    // Explicit time stepping has no scalar chains: it runs near budget.
    let heat = WorkloadSpec::new(PdeKind::Heat, 500, 1);
    let alr = SpmvAcceleratorModel::alrescha();
    let explicit_rate =
        (heat.nnz() as f64 * 12.0 + 3.0 * heat.points() as f64 * 8.0) / alr.run(&heat).seconds;
    assert!(explicit_rate > 0.7 * 128e9 * 0.8);
}
