//! Cross-engine equivalence matrix.
//!
//! Every backend of the unified engine layer — software sweeps
//! (`fdm::engine::SweepEngine`), the hardware-semantics reference
//! (`fdmax::engine::HwReferenceEngine`), the cycle-accurate simulator
//! (`fdmax::sim::DetailedSim`) and the analytic estimator
//! (`fdmax::engine::EstimateEngine`) — runs through the same generic
//! `Session` driver. This suite pins the contracts between them, per
//! benchmark PDE:
//!
//! * Jacobi: software == reference == simulator, bit for bit;
//! * Hybrid: reference == simulator in every elastic configuration, and
//!   both == software Hybrid when the configuration has no seams;
//! * estimator: event counters and cycles identical to the simulated run.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::engine::{ParallelSweepEngine, Session, SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::ops::{self, StencilOp};
use fdm::pde::{PdeKind, StencilProblem};
use fdm::precision::Scalar;
use fdm::solver::krylov::{conjugate_gradient, matrix_free_cg};
use fdm::solver::UpdateMethod;
use fdm::sparse::StencilSystem;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::engine::solve_reference;
use fdmax::sim::DetailedSim;

/// One equivalence point per benchmark PDE: odd sizes exercise uneven
/// strip/batch seams, Heat/Wave run their time-stepped datapaths.
const POINTS: [(PdeKind, usize, usize); 4] = [
    (PdeKind::Laplace, 30, 6),
    (PdeKind::Poisson, 27, 6),
    (PdeKind::Heat, 33, 6),
    (PdeKind::Wave, 26, 7),
];

fn assert_bit_identical(a: &Grid2D<f32>, b: &Grid2D<f32>, what: &str) {
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: mismatch at ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Runs a software sweep engine through the generic driver.
fn software_solution(sp: &StencilProblem<f32>, method: UpdateMethod, steps: usize) -> Grid2D<f32> {
    let mut session = Session::new(
        SweepEngine::new(sp, method),
        StopCondition::fixed_steps(steps),
    );
    session.run().expect("no policy, no failure");
    let (engine, _history) = session.into_parts();
    engine.into_solution()
}

/// Runs the cycle-accurate simulator through the generic driver.
fn simulated(
    cfg: FdmaxConfig,
    sp: &StencilProblem<f32>,
    method: HwUpdateMethod,
    elastic: ElasticConfig,
    steps: usize,
) -> DetailedSim {
    let mut sim = DetailedSim::with_elastic(cfg, sp, method, elastic).expect("valid config");
    let mut session = Session::new(&mut sim, StopCondition::fixed_steps(steps));
    session.run().expect("no policy, no failure");
    drop(session);
    sim
}

#[test]
fn jacobi_matrix_software_reference_simulator() {
    let cfg = FdmaxConfig::paper_default();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let sw = software_solution(&sp, UpdateMethod::Jacobi, steps);
        let elastic = ElasticConfig::plan(&cfg, n, n);
        let reference = solve_reference(
            &cfg,
            &sp,
            HwUpdateMethod::Jacobi,
            elastic,
            &StopCondition::fixed_steps(steps),
        );
        let sim = simulated(cfg, &sp, HwUpdateMethod::Jacobi, elastic, steps);
        assert_bit_identical(
            reference.solution(),
            &sw,
            &format!("{kind}: reference vs sw"),
        );
        assert_bit_identical(sim.solution(), &sw, &format!("{kind}: sim vs sw"));
        assert_eq!(sim.iterations(), steps);
        assert_eq!(reference.iterations(), steps);
    }
}

#[test]
fn hybrid_matrix_reference_vs_simulator_in_every_elastic_config() {
    let cfg = FdmaxConfig::paper_default();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        for e in ElasticConfig::options(&cfg) {
            let reference = solve_reference(
                &cfg,
                &sp,
                HwUpdateMethod::Hybrid,
                e,
                &StopCondition::fixed_steps(steps),
            );
            let sim = simulated(cfg, &sp, HwUpdateMethod::Hybrid, e, steps);
            assert_bit_identical(
                sim.solution(),
                reference.solution(),
                &format!("{kind} hybrid on {e}"),
            );
        }
    }
}

#[test]
fn hybrid_matrix_seam_free_config_matches_software() {
    // A monolithic 1 x 64 chain with a deep sub-FIFO has no block/batch
    // seams on these grids: hardware Hybrid == software Hybrid.
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    for (kind, n, steps) in POINTS {
        if n > 64 {
            continue;
        }
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let sw = software_solution(&sp, UpdateMethod::Hybrid, steps);
        let sim = simulated(cfg, &sp, HwUpdateMethod::Hybrid, e, steps);
        assert_bit_identical(sim.solution(), &sw, &format!("{kind} seam-free hybrid"));
    }
}

#[test]
fn parallel_matrix_strip_engine_matches_serial_software() {
    // The strip-parallel engine joins the matrix with the strongest
    // contract: bit-identical solutions AND bit-identical residual
    // histories at every thread count, for both parity-free methods.
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            let mut serial = Session::new(
                SweepEngine::new(&sp, method),
                StopCondition::fixed_steps(steps),
            );
            serial.run().expect("no policy, no failure");
            let (serial_engine, serial_history) = serial.into_parts();
            let serial_solution = serial_engine.into_solution();
            for threads in [1, 2, 4, 7] {
                let mut par = Session::new(
                    ParallelSweepEngine::new(&sp, method, threads),
                    StopCondition::fixed_steps(steps),
                );
                par.run().expect("no policy, no failure");
                let (engine, history) = par.into_parts();
                assert_eq!(engine.iterations(), steps);
                assert_eq!(history.len(), serial_history.len());
                for i in 0..history.len() {
                    let s = serial_history.get(i).unwrap();
                    let p = history.get(i).unwrap();
                    assert_eq!(
                        s.to_bits(),
                        p.to_bits(),
                        "{kind} {method:?} threads={threads} norm {i}: {s} vs {p}"
                    );
                }
                assert_bit_identical(
                    engine.solution(),
                    &serial_solution,
                    &format!("{kind} {method:?} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn estimator_matrix_counters_match_the_simulator_exactly() {
    let cfg = FdmaxConfig::paper_default();
    let accel = Accelerator::new(cfg).unwrap();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let simulated = accel
            .solve_with(
                &sp,
                HwUpdateMethod::Jacobi,
                &StopCondition::fixed_steps(steps),
            )
            .unwrap();
        let offset_present = matches!(kind, PdeKind::Poisson | PdeKind::Wave);
        let self_term = matches!(kind, PdeKind::Heat | PdeKind::Wave);
        let estimated = accel.estimate(n, n, offset_present, self_term, steps as u64);
        assert_eq!(
            estimated.counters(),
            simulated.report.counters(),
            "{kind}: estimator and simulator ledgers must be identical"
        );
        assert_eq!(estimated.cycles(), simulated.report.cycles());
        assert_eq!(estimated.elastic(), simulated.report.elastic());
        assert_eq!(estimated.iterations(), steps);
    }
}

// ------------------------------------------------------------------
// Matrix-free operator layer (`fdm::ops`) vs the assembled CSR oracle.
// The `ops_` prefix is the CI `ops-equivalence` job's test filter.
// ------------------------------------------------------------------

/// Fills the interior of `frame` with deterministic values in [-1, 1],
/// keeping the frame's (Dirichlet) ring intact.
fn randomized_interior<T: Scalar>(rng: &mut DetRng, frame: &Grid2D<T>) -> Grid2D<T> {
    let mut g = frame.clone();
    for i in 1..g.rows() - 1 {
        for j in 1..g.cols() - 1 {
            g[(i, j)] = T::from_f64(rng.gen_f64(-1.0, 1.0));
        }
    }
    g
}

/// Interior unknowns of a `T` grid as the f64 vector the CSR oracle
/// operates on (row-major, matching `StencilSystem` ordering).
fn interior_f64<T: Scalar>(g: &Grid2D<T>) -> Vec<f64> {
    let (rows, cols) = (g.rows(), g.cols());
    let mut out = Vec::with_capacity((rows - 2) * (cols - 2));
    for i in 1..rows - 1 {
        for j in 1..cols - 1 {
            out.push(g[(i, j)].to_f64());
        }
    }
    out
}

/// `StencilOp::apply` against the assembled `A = I - S` operator matrix,
/// for every benchmark PDE kind in both precisions. The oracle makes no
/// steady-state restriction, so Heat and Wave are covered too.
fn apply_differential<T: Scalar>(tol: f64) {
    let mut rng = DetRng::seed_from_u64(0x0950_0001);
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<T> = benchmark_problem(kind, n, steps).unwrap();
        let op = StencilOp::from_problem(&sp);
        let a = StencilSystem::operator_matrix(&sp).unwrap();
        // Zero ring: the CSR operator covers only the interior unknowns
        // (boundary contributions live in the right-hand side).
        let u = randomized_interior(&mut rng, &Grid2D::<T>::zeros(n, n));
        let mut out = Grid2D::zeros(n, n);
        op.apply(&u, &mut out);
        let oracle = a.spmv(&interior_f64(&u));
        let got = interior_f64(&out);
        for (k, (want, got)) in oracle.iter().zip(&got).enumerate() {
            assert!(
                (want - got).abs() <= tol * want.abs().max(1.0),
                "{kind}: A*u row {k}: op {got} vs csr {want}"
            );
        }
        // `apply` never touches the output ring.
        assert!(out.row(0).iter().all(|v| v.to_f64() == 0.0));
    }
}

#[test]
fn ops_apply_matches_the_csr_operator_oracle_f64() {
    apply_differential::<f64>(1e-12);
}

#[test]
fn ops_apply_matches_the_csr_operator_oracle_f32() {
    apply_differential::<f32>(1e-5);
}

/// Fused `residual_axpy` against `r = b - A*x` computed with the fully
/// assembled system, for the steady-state kinds in both precisions. The
/// returned scalar must be the squared norm of the residual it wrote.
fn residual_differential<T: Scalar>(tol: f64) {
    let mut rng = DetRng::seed_from_u64(0x0950_0002);
    for kind in [PdeKind::Laplace, PdeKind::Poisson] {
        let n = 21;
        let sp: StencilProblem<T> = benchmark_problem(kind, n, 0).unwrap();
        let op = StencilOp::from_problem(&sp);
        let sys = StencilSystem::assemble(&sp).unwrap();
        let u = randomized_interior(&mut rng, &sp.initial);
        let mut r = Grid2D::zeros(n, n);
        let norm2 = op.residual_axpy(&sp.offset, None, &u, &mut r);

        let mut oracle = sys.rhs.clone();
        let au = sys.matrix.spmv(&interior_f64(&u));
        for (b, au) in oracle.iter_mut().zip(&au) {
            *b -= au;
        }
        let got = interior_f64(&r);
        for (k, (want, got)) in oracle.iter().zip(&got).enumerate() {
            assert!(
                (want - got).abs() <= tol * want.abs().max(1.0),
                "{kind}: residual row {k}: op {got} vs csr {want}"
            );
        }
        let oracle_norm2 = ops::dot(&got, &got);
        assert!(
            (norm2 - oracle_norm2).abs() <= tol * oracle_norm2.max(1.0),
            "{kind}: fused norm {norm2} vs {oracle_norm2}"
        );
    }
}

#[test]
fn ops_residual_axpy_matches_the_assembled_system_f64() {
    residual_differential::<f64>(1e-12);
}

#[test]
fn ops_residual_axpy_matches_the_assembled_system_f32() {
    residual_differential::<f32>(1e-5);
}

/// End to end: matrix-free CG reaches the assembled oracle's solution on
/// the steady-state kinds, in both precisions, and keeps the Dirichlet
/// ring bit-intact.
fn solution_differential<T: Scalar>(tol: f64) {
    for kind in [PdeKind::Laplace, PdeKind::Poisson] {
        let n = 24;
        let sp: StencilProblem<T> = benchmark_problem(kind, n, 0).unwrap();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let oracle = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
        let (x, free) = matrix_free_cg(&sp, 1e-12, 10_000);
        assert!(oracle.converged && free.converged, "{kind}: both converge");
        let worst = oracle
            .solution
            .iter()
            .zip(&free.solution)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f64, f64::max);
        assert!(worst <= tol, "{kind}: solutions disagree by {worst}");
        for j in 0..n {
            assert_eq!(
                x[(0, j)].to_f64(),
                sp.initial[(0, j)].to_f64(),
                "{kind}: Dirichlet ring must survive the solve"
            );
        }
    }
}

#[test]
fn ops_matrix_free_cg_matches_the_assembled_oracle_f64() {
    solution_differential::<f64>(1e-9);
}

#[test]
fn ops_matrix_free_cg_matches_the_assembled_oracle_f32() {
    solution_differential::<f32>(1e-9);
}

/// Full-weighting restriction and bilinear prolongation are adjoint up
/// to the 2-D grid-transfer factor 4: `<R f, c> = <f, P c> / 4` for every
/// fine field `f` and coarse correction `c` with a zero ring. Random
/// fields over square and non-square, odd-sized grids stand witness.
#[test]
fn ops_restrict_prolong_adjoint_property() {
    let mut rng = DetRng::seed_from_u64(0x0950_0003);
    for (rows, cols) in [(17usize, 17usize), (33, 33), (17, 33)] {
        let frame = Grid2D::<f64>::zeros(rows, cols);
        let f = randomized_interior(&mut rng, &frame);
        let coarse_frame = Grid2D::<f64>::zeros(rows.div_ceil(2), cols.div_ceil(2));
        let c = randomized_interior(&mut rng, &coarse_frame);

        let rf = ops::restrict(&f);
        let lhs = ops::dot(rf.as_slice(), c.as_slice());

        let mut pc = Grid2D::<f64>::zeros(rows, cols);
        ops::prolong_add(&c, &mut pc);
        let rhs = ops::dot(f.as_slice(), pc.as_slice()) / 4.0;

        assert!(
            (lhs - rhs).abs() <= 1e-12 * lhs.abs().max(1.0),
            "{rows}x{cols}: <Rf,c> = {lhs} but <f,Pc>/4 = {rhs}"
        );
    }
}

#[test]
fn session_histories_agree_between_software_and_simulator() {
    // The Session records the same residual trajectory whichever backend
    // produced it (ECU norms match software norms to summation order).
    let cfg = FdmaxConfig::paper_default();
    let (kind, n, steps) = POINTS[0];
    let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
    let mut sw_session = Session::new(
        SweepEngine::new(&sp, UpdateMethod::Jacobi),
        StopCondition::fixed_steps(steps),
    );
    sw_session.run().expect("no policy, no failure");
    let (_, sw_history) = sw_session.into_parts();

    let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
    let mut hw_session = Session::new(&mut sim, StopCondition::fixed_steps(steps));
    hw_session.run().expect("no policy, no failure");
    let (_, hw_history) = hw_session.into_parts();

    assert_eq!(sw_history.len(), steps);
    assert_eq!(hw_history.len(), steps);
    for i in 0..steps {
        let sw = sw_history.get(i).unwrap();
        let hw = hw_history.get(i).unwrap();
        assert!(
            (sw - hw).abs() <= 1e-9 * sw.max(1.0),
            "norm {i}: software {sw} vs simulator {hw}"
        );
    }
}

/// The temporally tiled engine joins the matrix with a *tolerance*
/// contract: a `TiledSweepEngine` run to the same total sweep count as
/// the serial software engine matches its field within 1e-12 relative
/// (f64) / 1e-5 (f32) at every tile depth, band count and benchmark
/// PDE — and its epoch-granular residual history is the serial history
/// sampled at tile-epoch boundaries. (The current schedule is in fact
/// bit-identical — the tiled property suite pins that — but this matrix
/// states the documented contract, which permits intra-epoch
/// regrouping.)
fn tiled_matrix<T: Scalar>(tol: f64) {
    use fdm::tiled::TiledSweepEngine;

    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<T> = benchmark_problem(kind, n, steps).unwrap();
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            let mut serial = Session::new(
                SweepEngine::new(&sp, method),
                StopCondition::fixed_steps(steps),
            );
            serial.run().expect("no policy, no failure");
            let (serial_engine, serial_history) = serial.into_parts();
            let serial_solution = serial_engine.into_solution();
            for k in [2usize, 4] {
                for threads in [1usize, 4] {
                    let engine =
                        TiledSweepEngine::new(&sp, method, k, threads).with_iteration_cap(steps);
                    let mut tiled = Session::new(engine, StopCondition::fixed_steps(steps));
                    tiled.run().expect("no policy, no failure");
                    let (engine, history) = tiled.into_parts();
                    let what = format!("{kind} {method:?} k={k} threads={threads}");
                    assert_eq!(engine.iterations(), steps, "{what}: lands on the cap");
                    // Field: tolerance-equivalent to the serial engine.
                    let (a, b) = (engine.solution(), &serial_solution);
                    for i in 0..a.rows() {
                        for j in 0..a.cols() {
                            let (x, y) = (a[(i, j)].to_f64(), b[(i, j)].to_f64());
                            let e = (x - y).abs() / x.abs().max(y.abs()).max(1.0);
                            assert!(e <= tol, "{what}: ({i},{j}): {x} vs {y} (rel {e:.3e})");
                        }
                    }
                    // History: one entry per epoch, each the serial norm
                    // at that epoch's closing sweep.
                    assert_eq!(history.len(), steps.div_ceil(k), "{what}: epoch granularity");
                    for e in 0..history.len() {
                        let closing = ((e + 1) * k).min(steps);
                        let want = serial_history.get(closing - 1).unwrap();
                        let got = history.get(e).unwrap();
                        let err = (want - got).abs() / want.abs().max(1.0);
                        assert!(
                            err <= tol,
                            "{what}: epoch {e} norm {got} vs serial sweep {closing}'s {want}"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn tiled_matrix_fused_epochs_match_serial_software_f64() {
    tiled_matrix::<f64>(1e-12);
}

#[test]
fn tiled_matrix_fused_epochs_match_serial_software_f32() {
    tiled_matrix::<f32>(1e-5);
}
