//! Cross-engine equivalence matrix.
//!
//! Every backend of the unified engine layer — software sweeps
//! (`fdm::engine::SweepEngine`), the hardware-semantics reference
//! (`fdmax::engine::HwReferenceEngine`), the cycle-accurate simulator
//! (`fdmax::sim::DetailedSim`) and the analytic estimator
//! (`fdmax::engine::EstimateEngine`) — runs through the same generic
//! `Session` driver. This suite pins the contracts between them, per
//! benchmark PDE:
//!
//! * Jacobi: software == reference == simulator, bit for bit;
//! * Hybrid: reference == simulator in every elastic configuration, and
//!   both == software Hybrid when the configuration has no seams;
//! * estimator: event counters and cycles identical to the simulated run.

use fdm::convergence::StopCondition;
use fdm::engine::{ParallelSweepEngine, Session, SolveEngine, SweepEngine};
use fdm::grid::Grid2D;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::solver::UpdateMethod;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::engine::solve_reference;
use fdmax::sim::DetailedSim;

/// One equivalence point per benchmark PDE: odd sizes exercise uneven
/// strip/batch seams, Heat/Wave run their time-stepped datapaths.
const POINTS: [(PdeKind, usize, usize); 4] = [
    (PdeKind::Laplace, 30, 6),
    (PdeKind::Poisson, 27, 6),
    (PdeKind::Heat, 33, 6),
    (PdeKind::Wave, 26, 7),
];

fn assert_bit_identical(a: &Grid2D<f32>, b: &Grid2D<f32>, what: &str) {
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: mismatch at ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

/// Runs a software sweep engine through the generic driver.
fn software_solution(sp: &StencilProblem<f32>, method: UpdateMethod, steps: usize) -> Grid2D<f32> {
    let mut session = Session::new(
        SweepEngine::new(sp, method),
        StopCondition::fixed_steps(steps),
    );
    session.run().expect("no policy, no failure");
    let (engine, _history) = session.into_parts();
    engine.into_solution()
}

/// Runs the cycle-accurate simulator through the generic driver.
fn simulated(
    cfg: FdmaxConfig,
    sp: &StencilProblem<f32>,
    method: HwUpdateMethod,
    elastic: ElasticConfig,
    steps: usize,
) -> DetailedSim {
    let mut sim = DetailedSim::with_elastic(cfg, sp, method, elastic).expect("valid config");
    let mut session = Session::new(&mut sim, StopCondition::fixed_steps(steps));
    session.run().expect("no policy, no failure");
    drop(session);
    sim
}

#[test]
fn jacobi_matrix_software_reference_simulator() {
    let cfg = FdmaxConfig::paper_default();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let sw = software_solution(&sp, UpdateMethod::Jacobi, steps);
        let elastic = ElasticConfig::plan(&cfg, n, n);
        let reference = solve_reference(
            &cfg,
            &sp,
            HwUpdateMethod::Jacobi,
            elastic,
            &StopCondition::fixed_steps(steps),
        );
        let sim = simulated(cfg, &sp, HwUpdateMethod::Jacobi, elastic, steps);
        assert_bit_identical(
            reference.solution(),
            &sw,
            &format!("{kind}: reference vs sw"),
        );
        assert_bit_identical(sim.solution(), &sw, &format!("{kind}: sim vs sw"));
        assert_eq!(sim.iterations(), steps);
        assert_eq!(reference.iterations(), steps);
    }
}

#[test]
fn hybrid_matrix_reference_vs_simulator_in_every_elastic_config() {
    let cfg = FdmaxConfig::paper_default();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        for e in ElasticConfig::options(&cfg) {
            let reference = solve_reference(
                &cfg,
                &sp,
                HwUpdateMethod::Hybrid,
                e,
                &StopCondition::fixed_steps(steps),
            );
            let sim = simulated(cfg, &sp, HwUpdateMethod::Hybrid, e, steps);
            assert_bit_identical(
                sim.solution(),
                reference.solution(),
                &format!("{kind} hybrid on {e}"),
            );
        }
    }
}

#[test]
fn hybrid_matrix_seam_free_config_matches_software() {
    // A monolithic 1 x 64 chain with a deep sub-FIFO has no block/batch
    // seams on these grids: hardware Hybrid == software Hybrid.
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    for (kind, n, steps) in POINTS {
        if n > 64 {
            continue;
        }
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let sw = software_solution(&sp, UpdateMethod::Hybrid, steps);
        let sim = simulated(cfg, &sp, HwUpdateMethod::Hybrid, e, steps);
        assert_bit_identical(sim.solution(), &sw, &format!("{kind} seam-free hybrid"));
    }
}

#[test]
fn parallel_matrix_strip_engine_matches_serial_software() {
    // The strip-parallel engine joins the matrix with the strongest
    // contract: bit-identical solutions AND bit-identical residual
    // histories at every thread count, for both parity-free methods.
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        for method in [UpdateMethod::Jacobi, UpdateMethod::Checkerboard] {
            let mut serial = Session::new(
                SweepEngine::new(&sp, method),
                StopCondition::fixed_steps(steps),
            );
            serial.run().expect("no policy, no failure");
            let (serial_engine, serial_history) = serial.into_parts();
            let serial_solution = serial_engine.into_solution();
            for threads in [1, 2, 4, 7] {
                let mut par = Session::new(
                    ParallelSweepEngine::new(&sp, method, threads),
                    StopCondition::fixed_steps(steps),
                );
                par.run().expect("no policy, no failure");
                let (engine, history) = par.into_parts();
                assert_eq!(engine.iterations(), steps);
                assert_eq!(history.len(), serial_history.len());
                for i in 0..history.len() {
                    let s = serial_history.get(i).unwrap();
                    let p = history.get(i).unwrap();
                    assert_eq!(
                        s.to_bits(),
                        p.to_bits(),
                        "{kind} {method:?} threads={threads} norm {i}: {s} vs {p}"
                    );
                }
                assert_bit_identical(
                    engine.solution(),
                    &serial_solution,
                    &format!("{kind} {method:?} threads={threads}"),
                );
            }
        }
    }
}

#[test]
fn estimator_matrix_counters_match_the_simulator_exactly() {
    let cfg = FdmaxConfig::paper_default();
    let accel = Accelerator::new(cfg).unwrap();
    for (kind, n, steps) in POINTS {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let simulated = accel
            .solve_with(
                &sp,
                HwUpdateMethod::Jacobi,
                &StopCondition::fixed_steps(steps),
            )
            .unwrap();
        let offset_present = matches!(kind, PdeKind::Poisson | PdeKind::Wave);
        let self_term = matches!(kind, PdeKind::Heat | PdeKind::Wave);
        let estimated = accel.estimate(n, n, offset_present, self_term, steps as u64);
        assert_eq!(
            estimated.counters(),
            simulated.report.counters(),
            "{kind}: estimator and simulator ledgers must be identical"
        );
        assert_eq!(estimated.cycles(), simulated.report.cycles());
        assert_eq!(estimated.elastic(), simulated.report.elastic());
        assert_eq!(estimated.iterations(), steps);
    }
}

#[test]
fn session_histories_agree_between_software_and_simulator() {
    // The Session records the same residual trajectory whichever backend
    // produced it (ECU norms match software norms to summation order).
    let cfg = FdmaxConfig::paper_default();
    let (kind, n, steps) = POINTS[0];
    let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
    let mut sw_session = Session::new(
        SweepEngine::new(&sp, UpdateMethod::Jacobi),
        StopCondition::fixed_steps(steps),
    );
    sw_session.run().expect("no policy, no failure");
    let (_, sw_history) = sw_session.into_parts();

    let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
    let mut hw_session = Session::new(&mut sim, StopCondition::fixed_steps(steps));
    hw_session.run().expect("no policy, no failure");
    let (_, hw_history) = hw_session.into_parts();

    assert_eq!(sw_history.len(), steps);
    assert_eq!(hw_history.len(), steps);
    for i in 0..steps {
        let sw = sw_history.get(i).unwrap();
        let hw = hw_history.get(i).unwrap();
        assert!(
            (sw - hw).abs() <= 1e-9 * sw.max(1.0),
            "norm {i}: software {sw} vs simulator {hw}"
        );
    }
}
