//! The elastic PE-array machinery: decomposition options, planner
//! optimality, sub-FIFO sizing, and the mapping arithmetic.

use detrng::DetRng;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::mapping::{col_batches, iteration_compute_cycles, row_blocks, row_strips};
use fdmax::perf_model::iteration_estimate;

#[test]
fn options_use_every_pe_and_respect_granularity() {
    for (rows, cols) in [(8usize, 8usize), (4, 16), (6, 4), (12, 12)] {
        let mut cfg = FdmaxConfig::paper_default();
        cfg.pe_rows = rows;
        cfg.pe_cols = cols;
        let opts = ElasticConfig::options(&cfg);
        assert!(!opts.is_empty());
        for o in &opts {
            assert_eq!(o.pe_count(), rows * cols, "all PEs used by {o}");
            assert_eq!(o.width % cols, 0, "width is whole physical rows");
            assert_eq!(rows % o.subarrays, 0, "subarrays divide the rows");
        }
        // The monolithic chain is always available and listed first.
        assert_eq!(opts[0].subarrays, 1);
        assert_eq!(opts[0].width, rows * cols);
    }
}

#[test]
fn sub_fifo_depth_conserves_total_entries() {
    let cfg = FdmaxConfig::paper_default(); // 8 rows x 64 entries
    for e in ElasticConfig::options(&cfg) {
        assert_eq!(
            e.sub_fifo_depth(&cfg) * e.subarrays,
            cfg.fifo_depth * cfg.pe_rows,
            "reconfiguration redistributes, never creates, FIFO entries"
        );
    }
}

#[test]
fn planner_beats_or_ties_every_option_on_a_shape_sweep() {
    let cfg = FdmaxConfig::paper_default();
    for rows in [3usize, 10, 65, 200, 999] {
        for cols in [3usize, 10, 64, 65, 500] {
            let planned = ElasticConfig::plan(&cfg, rows, cols);
            let cost = |e: &ElasticConfig| {
                iteration_compute_cycles(
                    rows,
                    cols,
                    e.subarrays,
                    e.width,
                    e.sub_fifo_depth(&cfg),
                    cfg.buffer_banks,
                )
            };
            let planned_cost = cost(&planned);
            for o in ElasticConfig::options(&cfg) {
                assert!(
                    planned_cost <= cost(&o),
                    "{rows}x{cols}: planner chose {planned} but {o} is cheaper"
                );
            }
        }
    }
}

#[test]
fn strips_blocks_and_batches_tile_exactly() {
    // Exhaustive partition check over a range of geometries.
    for rows in 3usize..40 {
        for subarrays in 1usize..6 {
            let strips = row_strips(rows, subarrays);
            let covered: usize = strips.iter().map(fdmax::mapping::RowRange::height).sum();
            assert_eq!(covered, rows - 2, "strips cover the interior exactly");
            for (a, b) in strips.iter().zip(strips.iter().skip(1)) {
                assert_eq!(a.out_hi, b.out_lo, "strips contiguous");
            }
            for strip in strips {
                for depth in [1usize, 3, 64] {
                    let blocks = row_blocks(strip, depth);
                    let total: usize = blocks.iter().map(fdmax::mapping::RowRange::height).sum();
                    assert_eq!(total, strip.height());
                    assert!(blocks.iter().all(|b| b.height() <= depth));
                }
            }
        }
    }
    for cols in 1usize..50 {
        for width in 1usize..20 {
            let batches = col_batches(cols, width);
            let total: usize = batches.iter().map(fdmax::mapping::ColBatch::active).sum();
            assert_eq!(total, cols, "batches cover all columns");
            assert!(batches.iter().all(|b| b.active() <= width));
        }
    }
}

#[test]
fn fig9_shape_bandwidth_saturation() {
    // Fig. 9(a): with 64 banks, performance grows steeply up to ~8x8 and
    // then flattens at 128 GB/s, but keeps improving with bandwidth.
    let grid = 2_000;
    let perf = |s: usize, bw: f64| {
        let mut cfg = FdmaxConfig::square(s);
        cfg.buffer_banks = 64;
        cfg.dram_gb_s = bw;
        let e = ElasticConfig::plan(&cfg, grid, grid);
        let cycles = iteration_estimate(&cfg, &e, grid, grid, false).effective_cycles();
        1.0 / cycles as f64
    };
    // Monotone in bandwidth at fixed size.
    for s in [4usize, 8, 12] {
        let mut last = 0.0;
        for bw in [16.0, 64.0, 256.0] {
            let p = perf(s, bw);
            assert!(p >= last, "perf must not degrade with bandwidth");
            last = p;
        }
    }
    // Strong growth 4->8, weak growth 8->12 at 128 GB/s.
    let g48 = perf(8, 128.0) / perf(4, 128.0);
    let g812 = perf(12, 128.0) / perf(8, 128.0);
    assert!(g48 > 1.8, "4->8 gain {g48}");
    assert!(g812 < 1.4, "8->12 gain {g812} should be marginal");
}

/// The compute-cycle formula is monotone: more banks never hurt.
#[test]
fn more_banks_never_slow_down() {
    let mut rng = DetRng::seed_from_u64(0x6ba2c5);
    for _ in 0..64 {
        let rows = rng.gen_range(3, 300);
        let cols = rng.gen_range(3, 300);
        let subarrays = [1usize, 2, 4, 8][rng.gen_range(0, 4)];
        let width = 64 / subarrays;
        let a = iteration_compute_cycles(rows, cols, subarrays, width, 64, 16);
        let b = iteration_compute_cycles(rows, cols, subarrays, width, 64, 32);
        let c = iteration_compute_cycles(rows, cols, subarrays, width, 64, 64);
        assert!(a >= b, "{rows}x{cols}/{subarrays}");
        assert!(b >= c, "{rows}x{cols}/{subarrays}");
    }
}

/// Deeper FIFOs never hurt (fewer halo-row refetches).
#[test]
fn deeper_fifos_never_slow_down() {
    let mut rng = DetRng::seed_from_u64(0xf1f0);
    for _ in 0..64 {
        let rows = rng.gen_range(3, 300);
        let cols = rng.gen_range(3, 300);
        let shallow = iteration_compute_cycles(rows, cols, 1, 64, 16, 64);
        let deep = iteration_compute_cycles(rows, cols, 1, 64, 512, 64);
        assert!(deep <= shallow, "{rows}x{cols}");
    }
}
