//! Property suite for the multi-tenant front end
//! ([`fdmax::service::frontend`]): no starvation under scarce workers,
//! quotas as hard bounds, deterministic shed/brownout/hedge decisions
//! under replay, a 10k-job mixed-tenant soak with bounded queue
//! memory and zero deadline misses for admitted jobs, and a
//! mid-overload kill/recover cycle whose replayed digests match the
//! run that never crashed.
//!
//! Every scenario is driven by a seeded [`DetRng`], and every clock in
//! the system is virtual (engine iterations), so each property is a
//! pure function of its seed.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::durability::DurabilityConfig;
use fdmax::resilience::ResiliencePolicy;
use fdmax::service::frontend::{
    Frontend, FrontendConfig, FrontendReport, TenantConfig, TenantPriority,
};
use fdmax::service::{HedgeConfig, JobSpec, Rung, ServiceConfig, TenantId};
use memmodel::faults::FaultCampaign;
use std::collections::BTreeMap;

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

/// A cheap job: tiny grid, a few software-rung sweeps, varied enough
/// that latency rings and queue delays see real spread.
fn cheap_job(rng: &mut DetRng, tenant: TenantId) -> JobSpec {
    let kind = KINDS[rng.gen_range(0, KINDS.len())];
    let steps = 2 + rng.gen_range(0, 10);
    let sp = benchmark_problem::<f32>(kind, 8, steps).expect("benchmark problem");
    JobSpec::new(
        sp,
        HwUpdateMethod::Jacobi,
        StopCondition::fixed_steps(steps),
    )
    .with_entry_rung(Rung::Software)
    .with_tenant(tenant)
}

fn base_service() -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.max_job_iterations = 16;
    cfg.deadline_iterations = 5_000;
    cfg
}

/// One worker, three equally weighted tenants with standing backlogs:
/// with the rotating deficit-round-robin cursor, every tenant's
/// completed count strictly increases over any window of
/// `2 * tenants` consecutive rounds — nobody waits unboundedly behind
/// a lower `TenantId`.
#[test]
fn no_tenant_starves_under_a_scarce_pool() {
    let tenants = [TenantId(1), TenantId(2), TenantId(3)];
    let mut config = FrontendConfig::new(base_service(), 1);
    for t in tenants {
        config = config.with_tenant(
            t,
            TenantConfig {
                max_queued: 12,
                ..TenantConfig::default()
            },
        );
    }
    let mut fe = Frontend::new(config);
    let mut rng = DetRng::seed_from_u64(0xFA1);
    for round in 0..10u64 {
        for t in tenants {
            let _ = fe.submit(cheap_job(&mut rng, t)).expect("within quota");
        }
        let _ = round;
    }
    let mut last: BTreeMap<TenantId, u64> = tenants.iter().map(|&t| (t, 0)).collect();
    let window = 2 * tenants.len();
    let mut rounds_in_window = 0usize;
    while fe.backlog() > 0 {
        let _ = fe.run_round();
        rounds_in_window += 1;
        if rounds_in_window == window {
            for t in tenants {
                let done = fe.tenant_stats(t).expect("registered").completed;
                let backlogged = fe.tenant_backlog(t) > 0;
                assert!(
                    done > last[&t] || !backlogged,
                    "{t} starved: stuck at {done} completed with a backlog \
                     after {window} rounds"
                );
                last.insert(t, done);
            }
            rounds_in_window = 0;
        }
    }
    for t in tenants {
        assert_eq!(fe.tenant_stats(t).expect("registered").completed, 10);
    }
}

/// Quotas are hard bounds at every instant: a tenant's frontend
/// backlog never exceeds `max_queued`, and no scheduler round
/// dispatches more than `max_in_flight` of its jobs. Driven by a
/// random mixed-tenant arrival pattern aggressive enough that both
/// bounds are actually hit.
#[test]
fn quotas_are_never_exceeded() {
    let quota = |max_queued, max_in_flight| TenantConfig {
        max_queued,
        max_in_flight,
        ..TenantConfig::default()
    };
    let tenants = [
        (TenantId(1), quota(2, 1)),
        (TenantId(2), quota(5, 2)),
        (TenantId(3), quota(3, 1)),
    ];
    let mut config = FrontendConfig::new(base_service(), 3);
    for (t, q) in tenants {
        config = config.with_tenant(t, q);
    }
    let mut fe = Frontend::new(config);
    let mut rng = DetRng::seed_from_u64(0x0_0AD);
    let mut offered = 0u64;
    while offered < 1_000 {
        // Burst 0..6 arrivals at a random tenant, then one round.
        for _ in 0..rng.gen_range(0, 6) {
            let (t, q) = tenants[rng.gen_range(0, tenants.len())];
            let _ = fe.submit(cheap_job(&mut rng, t));
            offered += 1;
            assert!(
                fe.tenant_backlog(t) <= q.max_queued,
                "{t} backlog exceeded max_queued={}",
                q.max_queued
            );
        }
        let reports = fe.run_round();
        for (t, q) in tenants {
            let dispatched = reports.iter().filter(|r| r.tenant == t).count();
            assert!(
                dispatched <= q.max_in_flight,
                "{t} had {dispatched} jobs in one round (quota {})",
                q.max_in_flight
            );
        }
    }
    let _ = fe.drain();
    let stats = fe.stats();
    assert!(stats.rejected_quota > 0, "the pattern never hit a quota");
    assert_eq!(stats.admitted, stats.completed + stats.cancelled_queued);
}

/// An overloaded front end with shedding, brownout and hedging all
/// armed makes bit-identical decisions on replay: two runs from the
/// same seed produce the same report sequence (tenant, worker, delay,
/// entry rung, solution digest) and the same stats; a different seed
/// produces a different schedule.
#[test]
fn shed_brownout_and_hedge_decisions_replay_bit_identically() {
    /// `(tenant, worker, queue delay, entry rung index, solution digest)`.
    type TraceRow = (u64, u32, u64, usize, u64);
    fn scenario(seed: u64) -> (Vec<TraceRow>, String) {
        let mut service = base_service();
        service = service.with_hedge(HedgeConfig {
            percentile: 75,
            min_samples: 4,
        });
        let config = FrontendConfig::new(service, 2)
            .with_tenant(
                TenantId(1),
                TenantConfig {
                    priority: TenantPriority::Critical,
                    ..TenantConfig::default()
                },
            )
            .with_tenant(TenantId(2), TenantConfig::default())
            .with_tenant(TenantId(3), TenantConfig::default())
            .with_queue_delay_budget(10);
        let mut fe = Frontend::new(config);
        let mut rng = DetRng::seed_from_u64(seed);
        let mut reports: Vec<FrontendReport> = Vec::new();
        for _ in 0..200 {
            for _ in 0..4 {
                let t = TenantId(1 + rng.gen_range(0, 3) as u64);
                let _ = fe.submit(cheap_job(&mut rng, t));
            }
            reports.extend(fe.run_round());
        }
        reports.extend(fe.drain());
        let trace = reports
            .iter()
            .map(|r| {
                (
                    r.tenant.0,
                    r.worker,
                    r.queue_delay,
                    r.entry_rung.index(),
                    r.report.digest(),
                )
            })
            .collect();
        (trace, format!("{:?}", fe.stats()))
    }

    let (trace_a, stats_a) = scenario(0x5EED);
    let (trace_b, stats_b) = scenario(0x5EED);
    assert_eq!(trace_a, trace_b, "same seed, different schedule");
    assert_eq!(stats_a, stats_b);
    let (trace_c, _) = scenario(0x5EEE);
    assert_ne!(trace_a, trace_c, "the seed drives the schedule");
}

/// 10k mixed-tenant jobs through a 2-worker pool under sustained
/// overload: frontend queue memory stays bounded by the sum of
/// `max_queued` quotas the whole way, every admitted job completes,
/// and no admitted job misses its deadline (refusals absorb the
/// overload instead).
#[test]
fn soak_10k_jobs_bounded_memory_no_deadline_misses() {
    let tenants = [TenantId(1), TenantId(2), TenantId(3), TenantId(4)];
    let mut config = FrontendConfig::new(base_service(), 2);
    for t in tenants {
        config = config.with_tenant(t, TenantConfig::default());
    }
    let queue_bound: usize = tenants.len() * TenantConfig::default().max_queued;
    let mut fe = Frontend::new(config);
    let mut rng = DetRng::seed_from_u64(0x50AC);
    let mut offered = 0u64;
    while offered < 10_000 {
        for _ in 0..5 {
            if offered >= 10_000 {
                break;
            }
            let t = tenants[rng.gen_range(0, tenants.len())];
            let _ = fe.submit(cheap_job(&mut rng, t));
            offered += 1;
        }
        let _ = fe.run_round();
        assert!(
            fe.backlog() <= queue_bound,
            "frontend queue memory exceeded the quota bound {queue_bound}"
        );
    }
    let _ = fe.drain();
    let stats = fe.stats();
    assert_eq!(stats.admitted, offered - stats.rejected_quota - stats.shed);
    assert_eq!(
        stats.completed, stats.admitted,
        "every admitted job finished"
    );
    assert_eq!(
        stats.deadline_misses, 0,
        "an admitted job missed its deadline"
    );
    assert!(
        stats.rejected_quota > 0,
        "arrival rate never exceeded the service rate — not a soak"
    );
}

/// Mid-overload kill/recover: a durable pool dies with full frontend
/// queues and a torn journal tail on one worker; recovery re-runs the
/// interrupted job and every digest — replayed or not — matches the
/// run that never crashed.
#[test]
fn mid_overload_kill_recovers_every_worker_digest() {
    let tmp = |tag: &str| {
        let d =
            std::env::temp_dir().join(format!("fdmax-frontend-recov-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        d
    };
    // Dense parity-detected flips with a zero retry budget push every
    // job off the detailed rung onto the checkpoint-taking reference
    // rung — the interesting case for torn-tail recovery.
    let config = |dir: &std::path::Path| {
        let mut service = ServiceConfig::new(FdmaxConfig::paper_default());
        service.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(0xFEED)
        };
        service.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        let service = service.with_durability(DurabilityConfig::new(dir).with_checkpoint_every(5));
        FrontendConfig::new(service, 2)
            .with_tenant(TenantId(1), TenantConfig::default())
            .with_tenant(TenantId(2), TenantConfig::default())
    };
    let submit_all = |fe: &mut Frontend, rng: &mut DetRng| {
        for i in 0..12u64 {
            let t = TenantId(1 + i % 2);
            let _ = fe.submit(cheap_job(rng, t));
            let _ = t;
        }
    };

    // Ground truth: the same workload, never interrupted.
    let truth_dir = tmp("truth");
    let mut truth_rng = DetRng::seed_from_u64(0x1C1);
    let mut truth_fe = Frontend::new(config(&truth_dir));
    submit_all(&mut truth_fe, &mut truth_rng);
    let truth: BTreeMap<(u32, u64), u64> = truth_fe
        .drain()
        .iter()
        .map(|r| ((r.worker, r.report.job.0), r.report.digest()))
        .collect();
    std::fs::remove_dir_all(&truth_dir).expect("cleanup");

    // The doomed run dies after three rounds with jobs still queued.
    let dir = tmp("crash");
    let mut rng = DetRng::seed_from_u64(0x1C1);
    let mut doomed = Frontend::new(config(&dir));
    submit_all(&mut doomed, &mut rng);
    let mut seen: BTreeMap<(u32, u64), u64> = BTreeMap::new();
    for _ in 0..3 {
        for r in doomed.run_round() {
            seen.insert((r.worker, r.report.job.0), r.report.digest());
        }
    }
    assert!(doomed.backlog() > 0, "the kill must land mid-overload");
    drop(doomed);

    // Tear worker 0's journal tail mid-record: its last completed job
    // now looks interrupted to any future scan.
    let journal = dir.join("worker0").join(fdmax::durability::JOURNAL_FILE);
    let bytes = std::fs::read(&journal).expect("worker journal exists");
    assert!(bytes.len() > 5);
    std::fs::write(&journal, &bytes[..bytes.len() - 5]).expect("tear the tail");

    let (mut revived, summaries) = Frontend::recover(config(&dir));
    assert_eq!(summaries.len(), 2, "one summary per worker");
    assert!(
        summaries[0].torn_tail,
        "the torn frame is detected, not silently replayed"
    );
    let replayed: Vec<FrontendReport> = revived.drain();
    assert!(
        !replayed.is_empty(),
        "the interrupted job is re-admitted and finished"
    );
    for r in &replayed {
        seen.insert((r.worker, r.report.job.0), r.report.digest());
    }
    std::fs::remove_dir_all(&dir).expect("cleanup");

    // Every worker-admitted job — completed before the kill or
    // replayed after it — reproduces the uninterrupted run's digest.
    for (key, digest) in &seen {
        assert_eq!(
            truth.get(key),
            Some(digest),
            "worker {} job {} diverged from the uncrashed run",
            key.0,
            key.1
        );
    }
}
