//! Energy and area accounting across the stack: event-count invariants
//! (the computation-reuse multiplication budget, DRAM traffic laws),
//! the energy breakdown arithmetic, and the Table 3 layout model.

use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::perf_model::iteration_counters;
use memmodel::energy::{EnergyBreakdown, OpEnergies};
use memmodel::layout::{LayoutParams, LayoutReport};

#[test]
fn multiplications_respect_the_reuse_budget() {
    // §3.2.3: a reuse-aware PE needs <= 3 multiplications per output (+1
    // for the DIFF square); SpMV needs 5. Check the simulator's actual
    // counts stay within [2, 4] per interior point plus the streamed
    // warm-up overhead.
    let cfg = FdmaxConfig::paper_default();
    for kind in PdeKind::ALL {
        let n = 60;
        let sp = benchmark_problem::<f32>(kind, n, 1).unwrap();
        let e = ElasticConfig::plan(&cfg, n, n);
        let c = iteration_counters(
            &cfg,
            &e,
            n,
            n,
            sp.offset.requires_buffer(),
            sp.stencil.w_s != 0.0,
        );
        let interior = ((n - 2) * (n - 2)) as f64;
        let stencil_muls = if sp.stencil.w_s != 0.0 { 3.0 } else { 2.0 };
        let per_point = c.fp_mul as f64 / interior;
        // stencil muls (per streamed point, slightly more than interior)
        // + 1 DIFF square per interior point.
        let lower = stencil_muls + 1.0;
        let upper = (stencil_muls + 1.0) * 1.15; // streamed halo overhead
        assert!(
            per_point >= lower && per_point <= upper,
            "{kind}: {per_point:.3} muls/point outside [{lower}, {upper:.2}]"
        );
        // Always strictly better than the 5-mult SpMV form.
        assert!(per_point < 5.0);
    }
}

#[test]
fn dram_traffic_follows_the_streaming_law() {
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    // Laplace (no offset): reads ~ grid + per-block halo, writes = interior.
    let n = 600usize; // sub-FIFO depth is 512: two blocks -> one extra halo refetch
    let c = iteration_counters(&cfg, &e, n, n, false, false);
    let interior = ((n - 2) * (n - 2)) as u64;
    assert_eq!(c.dram_write, interior);
    let min_reads = (n * n) as u64;
    assert!(c.dram_read > min_reads, "halo rows are re-fetched");
    assert!(
        c.dram_read < min_reads + 10 * n as u64,
        "refetch overhead stays at a few rows per block"
    );
    // Poisson adds one offset element per interior point.
    let cp = iteration_counters(&cfg, &e, n, n, true, false);
    assert_eq!(cp.dram_read - c.dram_read, interior);
}

#[test]
fn energy_breakdown_sums_and_prices_correctly() {
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig::plan(&cfg, 80, 80);
    let c = iteration_counters(&cfg, &e, 80, 80, false, false);
    let ops = OpEnergies::fdmax_32nm();
    let b = EnergyBreakdown::from_counters(&c, &ops);
    let manual = c.fp_mul as f64 * ops.fp32_mul
        + c.fp_add as f64 * ops.fp32_add
        + c.rf_accesses() as f64 * ops.rf_access
        + c.fifo_ops() as f64 * ops.fifo_access
        + c.sram_accesses() as f64 * ops.sram_access
        + c.dram_traffic() as f64 * ops.dram_access;
    assert!((b.total_pj() - manual).abs() < 1e-6 * manual);
    // A streamed grid is DRAM-energy dominated — the motivation for all
    // the data-reuse machinery.
    assert!(b.dram_pj > b.compute_pj);
    assert!(b.dram_pj > b.sram_pj);
}

#[test]
fn on_chip_residency_slashes_energy_per_iteration() {
    let cfg = FdmaxConfig::paper_default();
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    let ops = OpEnergies::fdmax_32nm();
    let resident =
        EnergyBreakdown::from_counters(&iteration_counters(&cfg, &e, 32, 32, false, false), &ops);
    assert_eq!(resident.dram_pj, 0.0, "resident grids never touch DRAM");
    let streamed =
        EnergyBreakdown::from_counters(&iteration_counters(&cfg, &e, 64, 64, false, false), &ops);
    assert!(streamed.dram_pj > 0.0);
    // Per interior point, the streamed case costs much more.
    let per_resident = resident.total_pj() / (30.0 * 30.0);
    let per_streamed = streamed.total_pj() / (62.0 * 62.0);
    assert!(per_streamed > 3.0 * per_resident);
}

#[test]
fn layout_report_reproduces_table3_within_rounding() {
    let report = LayoutReport::new(&LayoutParams::fdmax_default());
    let expect: [(&str, f64, f64); 7] = [
        ("PE Array", 0.047, 293.04),
        ("Buffer Controller", 0.020, 18.72),
        ("nFIFO", 0.10, 142.90),
        ("pFIFO", 0.10, 142.20),
        ("CurBuffer", 0.24, 373.61),
        ("OffsetBuffer", 0.24, 369.25),
        ("NextBuffer", 0.24, 371.55),
    ];
    for (name, area, power) in expect {
        let c = report
            .component(name)
            .unwrap_or_else(|| panic!("{name} missing"));
        assert!((c.area_mm2 - area).abs() < 1e-6, "{name} area");
        assert!((c.power_mw - power).abs() < 1e-6, "{name} power");
    }
    assert!((report.total_area_mm2() - 0.987).abs() < 0.005);
    assert!((report.total_power_mw() - 1711.27).abs() < 0.01);
}

#[test]
fn accelerator_report_energy_consistent_with_counters() {
    let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
    let sp = benchmark_problem::<f32>(PdeKind::Heat, 48, 20).unwrap();
    let out = accel
        .solve(&sp, HwUpdateMethod::Jacobi)
        .expect("valid problem");
    let expect = EnergyBreakdown::from_counters(out.report.counters(), &OpEnergies::fdmax_32nm());
    assert_eq!(out.report.energy_joules(), expect.total_joules());
    assert!(out.report.seconds() > 0.0);
    assert_eq!(out.report.iterations(), 20);
}

#[test]
fn hybrid_costs_the_same_per_iteration_as_jacobi() {
    use fdm::convergence::StopCondition;
    use fdmax::sim::DetailedSim;
    // §4.2.3: the update-method mux changes an operand source, not the
    // datapath activity — per-iteration events are identical.
    let cfg = FdmaxConfig::paper_default();
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 40, 0).unwrap();
    let mut j = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
    let mut h = DetailedSim::new(cfg, &sp, HwUpdateMethod::Hybrid).unwrap();
    j.run(&StopCondition::fixed_steps(5));
    h.run(&StopCondition::fixed_steps(5));
    assert_eq!(j.counters(), h.counters());
}
