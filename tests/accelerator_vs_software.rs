//! The central functional contract: the cycle-accurate FDMAX simulation
//! produces **bit-identical** f32 fields to the software solvers.
//!
//! Jacobi must match `fdm::solver::sweep_jacobi` everywhere; Hybrid must
//! match the hardware-semantics reference (`fdmax::reference`) in every
//! elastic configuration, and plain software Hybrid whenever there are no
//! batch/block seams.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::grid::Grid2D;
use fdm::pde::{PdeKind, StencilProblem};
use fdm::solver::{solve, UpdateMethod};
use fdm::workload::{benchmark_problem, random_elliptic_problem};
use fdmax::accelerator::{Accelerator, HwUpdateMethod};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::mapping::row_strips;
use fdmax::reference::hybrid_hw_sweep;
use fdmax::sim::DetailedSim;

fn assert_bit_identical(a: &Grid2D<f32>, b: &Grid2D<f32>, what: &str) {
    for i in 0..a.rows() {
        for j in 0..a.cols() {
            assert_eq!(
                a[(i, j)].to_bits(),
                b[(i, j)].to_bits(),
                "{what}: mismatch at ({i},{j}): {} vs {}",
                a[(i, j)],
                b[(i, j)]
            );
        }
    }
}

#[test]
fn jacobi_bitwise_for_all_pdes_and_elastic_configs() {
    let cfg = FdmaxConfig::paper_default();
    for (kind, n, steps) in [
        (PdeKind::Laplace, 30, 6),
        (PdeKind::Poisson, 27, 6),
        (PdeKind::Heat, 41, 6),
        (PdeKind::Wave, 33, 6),
    ] {
        let sp: StencilProblem<f32> = benchmark_problem(kind, n, steps).unwrap();
        let sw = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::fixed_steps(steps),
        );
        for e in ElasticConfig::options(&cfg) {
            let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
            for _ in 0..steps {
                sim.step();
            }
            assert_bit_identical(
                sim.solution(),
                sw.solution(),
                &format!("{kind} {n}x{n} on {e}"),
            );
        }
    }
}

#[test]
fn hybrid_bitwise_against_hardware_reference_in_every_config() {
    let cfg = FdmaxConfig::paper_default();
    let sp: StencilProblem<f32> = benchmark_problem(PdeKind::Laplace, 37, 0).unwrap();
    for e in ElasticConfig::options(&cfg) {
        // Software reference of the hardware Hybrid semantics, advanced
        // the same number of sweeps.
        let strips = row_strips(37, e.subarrays);
        let depth = e.sub_fifo_depth(&cfg);
        let mut cur = sp.initial.clone();
        let mut next = cur.clone();
        for _ in 0..5 {
            hybrid_hw_sweep(
                &sp.stencil,
                &sp.offset,
                &cur,
                None,
                &mut next,
                &strips,
                depth,
                e.width,
            );
            core::mem::swap(&mut cur, &mut next);
        }

        let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Hybrid, e).unwrap();
        for _ in 0..5 {
            sim.step();
        }
        assert_bit_identical(sim.solution(), &cur, &format!("hybrid on {e}"));
    }
}

#[test]
fn hybrid_without_seams_matches_plain_software_hybrid() {
    // A grid narrower than the chain and shorter than the sub-FIFO has no
    // seams: hardware Hybrid == sweep_hybrid.
    let cfg = FdmaxConfig::paper_default();
    let sp: StencilProblem<f32> = benchmark_problem(PdeKind::Poisson, 40, 0).unwrap();
    let sw = solve(&sp, UpdateMethod::Hybrid, &StopCondition::fixed_steps(8));
    let e = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Hybrid, e).unwrap();
    for _ in 0..8 {
        sim.step();
    }
    assert_bit_identical(sim.solution(), sw.solution(), "seam-free hybrid");
}

#[test]
fn full_solve_converges_to_the_same_iteration_count() {
    let cfg = FdmaxConfig::paper_default();
    let accel = Accelerator::new(cfg).unwrap();
    let sp: StencilProblem<f32> = benchmark_problem(PdeKind::Laplace, 32, 0).unwrap();
    let stop = StopCondition::tolerance(1e-4, 200_000);
    let hw = accel
        .solve_with(&sp, HwUpdateMethod::Jacobi, &stop)
        .expect("valid problem");
    let sw = solve(&sp, UpdateMethod::Jacobi, &stop);
    assert!(hw.converged && sw.converged());
    assert_eq!(hw.iterations, sw.iterations());
    assert_bit_identical(&hw.solution, sw.solution(), "full Jacobi solve");
}

#[test]
fn wave_equation_history_bitwise_across_configs() {
    // The OffsetBuffer path (b = -U^{k-1}) with double-buffer rotation.
    let cfg = FdmaxConfig::paper_default();
    let sp: StencilProblem<f32> = benchmark_problem(PdeKind::Wave, 26, 9).unwrap();
    let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(9));
    for e in ElasticConfig::options(&cfg) {
        let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
        for _ in 0..9 {
            sim.step();
        }
        assert_bit_identical(sim.solution(), sw.solution(), &format!("wave on {e}"));
    }
}

/// Random elliptic problems (random dims, boundaries, sources) stay
/// bit-identical between hardware Jacobi and software Jacobi.
#[test]
fn random_elliptic_jacobi_bitwise() {
    for seed in 0u64..12 {
        let mut rng = DetRng::seed_from_u64(seed);
        let sp: StencilProblem<f32> = random_elliptic_problem(&mut rng, 24);
        let steps = 1 + (seed as usize % 5);
        let cfg = FdmaxConfig::paper_default();
        let sw = solve(
            &sp,
            UpdateMethod::Jacobi,
            &StopCondition::fixed_steps(steps),
        );
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        for _ in 0..steps {
            sim.step();
        }
        assert_bit_identical(
            sim.solution(),
            sw.solution(),
            &format!("random elliptic seed {seed}"),
        );
    }
}

/// The ECU's update norm equals the software history for random
/// problems (up to f64 summation order).
#[test]
fn ecu_norm_matches_software() {
    for seed in 0u64..12 {
        let mut rng = DetRng::seed_from_u64(seed.wrapping_mul(7919));
        let sp: StencilProblem<f32> = random_elliptic_problem(&mut rng, 20);
        let cfg = FdmaxConfig::paper_default();
        let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
        let hw_norm = sim.step();
        let sw = solve(&sp, UpdateMethod::Jacobi, &StopCondition::fixed_steps(1));
        let sw_norm = sw.history().last().unwrap();
        assert!((hw_norm - sw_norm).abs() <= 1e-9 * sw_norm.max(1.0));
    }
}
