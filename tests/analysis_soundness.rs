//! Soundness of the static solve-plan analyzer (`fdmax::analysis`)
//! against measured runs — the §14 contract of DESIGN.md.
//!
//! Three claims, each over ≥100 DetRng-sampled configurations:
//!
//! 1. **Bounds bracket reality** — for tolerance jobs, the sweep-rung
//!    iteration interval `[lb, ub]` from [`sweep_iteration_bounds`]
//!    contains the measured iteration count of the software sweep.
//! 2. **Admission verdicts hold** — a plan the analyzer proves feasible
//!    (no FDX015 finding) converges inside its budget; a plan it rejects
//!    as infeasible (FDX015 at Error) provably does not.
//! 3. **Race-freedom certification is sound** — every band plan
//!    [`BandPlan::from_threads`] derives certifies clean, and the
//!    strip-parallel engine it describes reproduces the serial engine's
//!    residual history bitwise and its field exactly.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::engine::{ParallelSweepEngine, SolveEngine, SweepEngine};
use fdm::pde::PdeKind;
use fdm::solver::solve;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::analysis::{
    analyze_plan, certify_band_plan, sweep_iteration_bounds, BandPlan, PrecisionClass, SolvePlan,
};
use fdmax::config::FdmaxConfig;
use fdmax::lint::{DiagCode, ServiceSpec, Severity};

fn random_tolerance_plan(rng: &mut DetRng) -> SolvePlan {
    let n = rng.gen_range(8, 21);
    SolvePlan {
        rows: n,
        cols: n,
        method: if rng.gen_bool(0.5) {
            HwUpdateMethod::Jacobi
        } else {
            HwUpdateMethod::Hybrid
        },
        // Tolerances the f64 software sweep can honestly reach.
        tolerance: Some(10f64.powi(-(rng.gen_range(2, 7) as i32))),
        requested_iterations: 1_000_000,
        precision: PrecisionClass::F64,
        steady_state: true,
        scale: 1.0, // sine_top(1.0): the initial field's max magnitude
        parallel_threads: 4,
        tile_depth: 1,
    }
}

fn spec_with_deadline(deadline: u64) -> ServiceSpec {
    ServiceSpec {
        queue_capacity: 1,
        max_job_iterations: 1_000_000,
        deadline_iterations: deadline,
        checkpoint_every: None,
        journal_dir: None,
    }
}

/// Claims 1 and 2 (feasible side): the bounds bracket the measured
/// iteration count, and an analyzer-proven budget is really enough.
#[test]
fn bounds_bracket_measured_iterations_and_proofs_hold() {
    let mut rng = DetRng::seed_from_u64(0xFD50);
    let mut checked = 0usize;
    while checked < 100 {
        let plan = random_tolerance_plan(&mut rng);
        let tol = plan.tolerance.unwrap();
        let (lb, ub) = sweep_iteration_bounds(&plan).expect("a scaled tolerance plan has bounds");
        assert!(lb <= ub, "bounds are ordered: {lb} > {ub}");

        // The analyzer proves feasibility at a budget of `ub`: no
        // FDX015 finding of any severity.
        let spec = spec_with_deadline(ub.max(1));
        let report = analyze_plan(&plan, &FdmaxConfig::paper_default(), Some(&spec));
        assert!(
            !report.lint().has(DiagCode::ConvergenceBudgetInfeasible),
            "a budget of ub={ub} is proven feasible\n{}",
            report.lint()
        );

        // Measure: the software sweep the service would run, capped just
        // above the upper bound so an unsound bound fails loudly instead
        // of spinning.
        let sp = benchmark_problem::<f64>(PdeKind::Laplace, plan.rows, 0).unwrap();
        let result = solve(
            &sp,
            plan.method.software_equivalent(),
            &StopCondition::tolerance(tol, ub as usize + 10),
        );
        assert!(
            result.converged(),
            "proven-feasible job missed its budget: {}x{} {:?} tol {tol:.1e} \
             ran {} iterations against ub {ub}",
            plan.rows,
            plan.cols,
            plan.method,
            result.iterations(),
        );
        let k = result.iterations() as u64;
        assert!(
            lb <= k && k <= ub,
            "measured {k} iterations outside [{lb}, {ub}] for {}x{} {:?} tol {tol:.1e}",
            plan.rows,
            plan.cols,
            plan.method,
        );
        checked += 1;
    }
}

/// Claim 2 (infeasible side): when the analyzer emits FDX015 at Error —
/// no rung, Krylov included, fits the budget — the sweep really does
/// fail to reach the tolerance inside that budget.
#[test]
fn infeasible_verdicts_match_measured_misses() {
    let mut rng = DetRng::seed_from_u64(0xFD51);
    let mut checked = 0usize;
    while checked < 100 {
        let plan = random_tolerance_plan(&mut rng);
        let tol = plan.tolerance.unwrap();
        // A budget below the Krylov iteration floor (interior/4) closes
        // the escape hatch; skip draws where even that tiny budget is
        // honest (loose tolerances converge absurdly fast).
        let kry_floor = ((plan.rows - 2).min(plan.cols - 2) / 4).max(1) as u64;
        if kry_floor <= 1 {
            continue;
        }
        let budget = rng.gen_range(1, kry_floor as usize) as u64;
        let spec = spec_with_deadline(budget);
        let report = analyze_plan(&plan, &FdmaxConfig::paper_default(), Some(&spec));
        let Some(diag) = report
            .lint()
            .diagnostics()
            .iter()
            .find(|d| d.code == DiagCode::ConvergenceBudgetInfeasible)
            .filter(|d| d.severity() == Severity::Error)
        else {
            // The analyzer did not reject outright (e.g. the tolerance
            // is loose enough to fit): not this claim's subject.
            continue;
        };
        assert_eq!(diag.field, "deadline_iterations");

        let sp = benchmark_problem::<f64>(PdeKind::Laplace, plan.rows, 0).unwrap();
        let result = solve(
            &sp,
            plan.method.software_equivalent(),
            &StopCondition::tolerance(tol, budget as usize),
        );
        assert!(
            !result.converged(),
            "analyzer rejected {}x{} {:?} tol {tol:.1e} at budget {budget}, \
             but the sweep converged in {} iterations: the rejection is unsound",
            plan.rows,
            plan.cols,
            plan.method,
            result.iterations(),
        );
        checked += 1;
    }
}

/// Claim 3: every derived band plan certifies clean, and the parallel
/// engine it describes is bit-identical to the serial engine — residual
/// history and field — at every sampled thread count.
#[test]
fn certified_band_plans_have_no_cross_thread_residual_mismatch() {
    let mut rng = DetRng::seed_from_u64(0xFD52);
    for _ in 0..100 {
        let n = rng.gen_range(4, 33);
        let threads = rng.gen_range(1, 12);
        let plan = BandPlan::from_threads(n, n, threads);
        let report = certify_band_plan(&plan);
        assert!(
            report.is_clean(),
            "derived plan for {n}x{n} at {threads} thread(s) flagged:\n{report}"
        );

        let sp = benchmark_problem::<f32>(PdeKind::Laplace, n, 0).unwrap();
        let mut par = ParallelSweepEngine::new(&sp, fdm::solver::UpdateMethod::Jacobi, threads);
        assert_eq!(
            plan.bands,
            par.bands(),
            "the certifier certified the engine's real geometry"
        );
        let mut ser = SweepEngine::new(&sp, fdm::solver::UpdateMethod::Jacobi);
        for step in 0..4 {
            let a = par.step().norm;
            let b = ser.step().norm;
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "residual mismatch at step {step} for {n}x{n} at {threads} thread(s)"
            );
        }
        assert_eq!(par.solution(), ser.solution(), "fields diverged");
    }
}
