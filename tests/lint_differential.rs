//! Differential validation of the elaboration-time lint (`fdmax::lint`)
//! against the cycle-accurate simulator.
//!
//! Two directions, both required for the lint to be trustworthy:
//!
//! 1. **Soundness of "clean"** — at least 100 randomly generated
//!    lint-clean deployments construct a [`DetailedSim`] successfully and
//!    run with **zero** FIFO backpressure/underflow events: the symbolic
//!    steady-state schedule the lint derived really is stall-free.
//! 2. **Witnesses for every code** — for each diagnostic `FDX0xx`, a
//!    configuration that trips it demonstrably misbehaves when the lint
//!    gate is bypassed (hardware-assert panic, constructor error, stalls,
//!    idle subarrays, or measurable DRAM residency), so no diagnostic is
//!    a false alarm by construction.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::grid::Grid2D;
use fdm::pde::PdeKind;
use fdm::stencil::FivePointStencil;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::analysis::{analyze_plan, certify_band_plan, BandPlan, PrecisionClass, SolvePlan};
use fdmax::array::{OffsetSource, Subarray};
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::lint::{
    lint, lint_frontend, lint_plan, lint_service, DiagCode, FrontendSpec, LintTarget, PlanSpec,
    ServiceSpec, Severity, ALL_CODES,
};
use fdmax::mapping::{col_batches, row_blocks, row_strips, ColBatch, RowRange};
use fdmax::pe::PeConfig;
use fdmax::resilience::FdmaxError;
use fdmax::sim::DetailedSim;

/// Draws a deployment from a space that mixes legal and illegal values
/// (zero knobs included) so the generator exercises both sides of the
/// lint gate.
fn random_target(rng: &mut DetRng) -> LintTarget {
    let mut config = FdmaxConfig::paper_default();
    config.pe_rows = rng.gen_range(0, 13);
    config.pe_cols = rng.gen_range(0, 13);
    config.fifo_depth = rng.gen_range(0, 65);
    config.buffer_banks = rng.gen_range(0, 65);
    config.buffer_depth = rng.gen_range(1, 65);
    let n = rng.gen_range(3, 41);
    let method = if rng.gen_bool(0.5) {
        HwUpdateMethod::Jacobi
    } else {
        HwUpdateMethod::Hybrid
    };
    LintTarget::planned(config, n, n, method)
}

/// Direction 1: the gate and the simulator agree, and lint-clean means
/// stall-free. ≥100 clean configs run with zero backpressure events;
/// every lint-rejected config is refused by the constructor.
#[test]
fn lint_clean_configs_run_without_backpressure() {
    let mut rng = DetRng::seed_from_u64(0xFD11);
    let mut clean_runs = 0usize;
    let mut rejected = 0usize;
    let mut attempts = 0usize;
    while clean_runs < 100 {
        attempts += 1;
        assert!(attempts < 5_000, "generator starved: {clean_runs} clean");
        let target = random_target(&mut rng);
        let report = lint(&target);
        let sp = benchmark_problem::<f32>(PdeKind::Laplace, target.rows, 0).unwrap();
        let built = DetailedSim::new(target.config, &sp, target.method);
        if report.has_errors() {
            assert!(
                built.is_err(),
                "lint rejected {:?} on {}x{} but the constructor accepted it:\n{report}",
                target.config,
                target.rows,
                target.cols
            );
            rejected += 1;
            continue;
        }
        let mut sim = built.unwrap_or_else(|e| {
            panic!(
                "lint-clean {:?} on {}x{} refused by the constructor: {e}",
                target.config, target.rows, target.cols
            )
        });
        sim.run(&StopCondition::fixed_steps(2));
        let c = sim.counters();
        assert_eq!(
            c.fifo_backpressure_stalls, 0,
            "lint-clean config backpressured: {:?} on {}x{}",
            target.config, target.rows, target.cols
        );
        assert!(c.fifo_push >= c.fifo_pop, "pops outran pushes (underflow)");
        clean_runs += 1;
    }
    assert!(rejected > 0, "the space never produced an illegal config");
}

/// Every diagnostic code has a generated witness somewhere in the random
/// space: the lint is reachable, not dead code.
#[test]
fn every_code_is_reachable_from_the_random_space() {
    let mut rng = DetRng::seed_from_u64(0xFD22);
    let mut seen = std::collections::BTreeSet::new();
    for _ in 0..2_000 {
        let mut target = random_target(&mut rng);
        // The planner never emits illegal elastic pairs or bad schedules,
        // so FDX002/3/4/10 need occasional hand-built inputs.
        if rng.gen_bool(0.3) {
            target.elastic = Some(ElasticConfig {
                subarrays: rng.gen_range(0, 5),
                width: rng.gen_range(0, 70),
            });
        }
        if rng.gen_bool(0.1) {
            target.rows = rng.gen_range(0, 3); // no interior -> FDX007
        }
        for d in lint(&target).diagnostics() {
            seen.insert(d.code);
        }
    }
    let plan = PlanSpec {
        width: 8,
        fifo_depth: 4,
        cols: 16,
        blocks: vec![RowRange {
            out_lo: 1,
            out_hi: 9,
        }],
        batches: vec![ColBatch { c0: 2, c1: 10 }, ColBatch { c0: 11, c1: 24 }],
    };
    for d in lint_plan(&plan).diagnostics() {
        seen.insert(d.code);
    }
    // FDX014 fires only at scales the random space (n < 41) never
    // reaches: a hand-built 8192^2 deployment stands witness.
    let huge = LintTarget::planned(
        FdmaxConfig::paper_default(),
        8192,
        8192,
        HwUpdateMethod::Jacobi,
    );
    for d in lint(&huge).diagnostics() {
        seen.insert(d.code);
    }
    // The service lint draws from its own input space.
    for _ in 0..200 {
        let spec = ServiceSpec {
            queue_capacity: rng.gen_range(1, 33),
            max_job_iterations: rng.gen_range(1, 2_000),
            deadline_iterations: rng.gen_range(1, 20_000) as u64,
            checkpoint_every: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0, 30_000) as u64)
            } else {
                None
            },
            journal_dir: None,
        };
        for d in lint_service(&spec).diagnostics() {
            seen.insert(d.code);
        }
    }
    // The front-end lint (FDX020/FDX021) draws from its own sizing
    // space.
    for _ in 0..200 {
        let tenants = rng.gen_range(0, 5);
        let spec = FrontendSpec {
            workers: rng.gen_range(1, 5),
            tenant_in_flight_quotas: (0..tenants).map(|_| rng.gen_range(1, 5)).collect(),
            hedge_enabled: rng.gen_bool(0.5),
            entry_rung_index: rng.gen_range(0, 7),
        };
        for d in lint_frontend(&spec).diagnostics() {
            seen.insert(d.code);
        }
    }
    // The solve-plan analyzer (FDX015/016/017/019) draws from its own
    // job-class space.
    for _ in 0..400 {
        let plan = SolvePlan {
            rows: rng.gen_range(3, 130),
            cols: rng.gen_range(3, 130),
            method: if rng.gen_bool(0.5) {
                HwUpdateMethod::Jacobi
            } else {
                HwUpdateMethod::Hybrid
            },
            tolerance: if rng.gen_bool(0.7) {
                Some(10f64.powi(-(rng.gen_range(1, 16) as i32)))
            } else {
                None
            },
            requested_iterations: rng.gen_range(1, 2_000),
            precision: match rng.gen_range(0, 3) {
                0 => PrecisionClass::F16,
                1 => PrecisionClass::F32,
                _ => PrecisionClass::F64,
            },
            steady_state: rng.gen_bool(0.6),
            scale: 1.0,
            parallel_threads: rng.gen_range(1, 9),
            tile_depth: rng.gen_range(1, 40),
        };
        let spec = ServiceSpec {
            queue_capacity: rng.gen_range(1, 33),
            max_job_iterations: rng.gen_range(1, 2_000),
            deadline_iterations: rng.gen_range(1, 20_000) as u64,
            checkpoint_every: if rng.gen_bool(0.5) {
                Some(rng.gen_range(0, 30_000) as u64)
            } else {
                None
            },
            journal_dir: None,
        };
        let analysis = analyze_plan(&plan, &FdmaxConfig::paper_default(), Some(&spec));
        for d in analysis.into_lint().diagnostics() {
            seen.insert(d.code);
        }
    }
    // FDX018 fires only for band plans no planner derives: a hand-built
    // aliasing plan stands witness.
    for d in certify_band_plan(&BandPlan {
        rows: 12,
        cols: 12,
        bands: vec![1..7, 5..11],
    })
    .diagnostics()
    {
        seen.insert(d.code);
    }
    for code in ALL_CODES {
        assert!(seen.contains(&code), "{code} has no witness in the space");
    }
}

fn laplace_chain(width: usize, fifo_depth: usize) -> Subarray {
    Subarray::new(
        width,
        PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false),
        fifo_depth,
    )
}

fn grids(n: usize) -> (Grid2D<f32>, Grid2D<f32>) {
    (Grid2D::zeros(n, n), Grid2D::zeros(n, n))
}

fn panics<F: FnOnce() + std::panic::UnwindSafe>(f: F) -> bool {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {})); // keep the expected panic quiet
    let r = std::panic::catch_unwind(f).is_err();
    std::panic::set_hook(prev);
    r
}

/// Direction 2, FDX001: a zero structural knob is refused by the gate,
/// and the bare hardware model asserts if the gate is bypassed.
#[test]
fn fdx001_witness_zero_parameter() {
    let mut cfg = FdmaxConfig::paper_default();
    cfg.fifo_depth = 0;
    let report = lint(&LintTarget::planned(cfg, 20, 20, HwUpdateMethod::Jacobi));
    assert!(report.has(DiagCode::ZeroParameter) && report.has_errors());
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 20, 0).unwrap();
    assert!(matches!(
        DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi),
        Err(FdmaxError::Config(_))
    ));
    // Bypassing the gate: the subarray itself refuses to exist.
    assert!(panics(|| {
        laplace_chain(8, 0);
    }));
}

/// FDX002: an elastic decomposition the physical array cannot host. The
/// planner never proposes it, and the explicit-elastic constructor
/// refuses it.
#[test]
fn fdx002_witness_elastic_mismatch() {
    let cfg = FdmaxConfig::paper_default(); // 64 PEs
    let bad = ElasticConfig {
        subarrays: 3,
        width: 21, // 63 PEs, and 8 rows don't split into 3 chains
    };
    let report = lint(&LintTarget {
        config: cfg,
        elastic: Some(bad),
        rows: 20,
        cols: 20,
        method: HwUpdateMethod::Jacobi,
    });
    assert!(report.has(DiagCode::ElasticMismatch) && report.has_errors());
    assert!(
        !ElasticConfig::options(&cfg).contains(&bad),
        "the planner itself would never emit this decomposition"
    );
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 20, 0).unwrap();
    assert!(matches!(
        DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, bad),
        Err(FdmaxError::ElasticMismatch { .. })
    ));
}

/// FDX003: a row block taller than the sub-FIFO. The chain's push/pop
/// accounting cannot work, and the hardware assert fires on entry.
#[test]
fn fdx003_witness_fifo_depth_exceeded() {
    let plan = PlanSpec {
        width: 8,
        fifo_depth: 4,
        cols: 16,
        blocks: vec![RowRange {
            out_lo: 1,
            out_hi: 9,
        }], // 8 rows, 4-deep FIFO
        batches: col_batches(16, 8),
    };
    let report = lint_plan(&plan);
    assert!(report.has(DiagCode::FifoDepthExceeded));
    assert!(panics(|| {
        let mut sa = laplace_chain(8, 4);
        let (cur, mut next) = grids(16);
        let mut counters = Default::default();
        sa.run_block(
            plan.blocks[0],
            &plan.batches,
            &cur,
            &mut next,
            OffsetSource::None,
            &mut counters,
        );
    }));
}

/// FDX004: a batch wider than the chain (no PE, no `HaloAdder` input for
/// the overflow columns) asserts in hardware; a gap between batches
/// silently never computes the skipped columns.
#[test]
fn fdx004_witness_halo_seam_uncovered() {
    let wide = PlanSpec {
        width: 4,
        fifo_depth: 16,
        cols: 12,
        blocks: vec![RowRange {
            out_lo: 1,
            out_hi: 5,
        }],
        batches: vec![ColBatch { c0: 0, c1: 8 }], // 8 columns on a 4-PE chain
    };
    assert!(lint_plan(&wide).has(DiagCode::HaloSeamUncovered));
    assert!(panics(|| {
        let mut sa = laplace_chain(4, 16);
        let (cur, mut next) = grids(12);
        let mut counters = Default::default();
        sa.run_block(
            wide.blocks[0],
            &wide.batches,
            &cur,
            &mut next,
            OffsetSource::None,
            &mut counters,
        );
    }));

    // The gap variant: columns in the hole keep their stale value.
    let gap = PlanSpec {
        width: 4,
        fifo_depth: 16,
        cols: 12,
        blocks: vec![RowRange {
            out_lo: 1,
            out_hi: 5,
        }],
        batches: vec![ColBatch { c0: 0, c1: 4 }, ColBatch { c0: 8, c1: 12 }],
    };
    assert!(lint_plan(&gap).has(DiagCode::HaloSeamUncovered));
}

/// FDX005: more concurrent accesses than banks. The stall the lint
/// predicts shows up as real `stall_cycles` in the simulator, and
/// disappears when the banks are provisioned.
#[test]
fn fdx005_witness_bank_oversubscription() {
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 24, 0).unwrap();
    let starved = FdmaxConfig::paper_default(); // 64 PEs, 32 banks
    let report = lint(&LintTarget::planned(
        starved,
        24,
        24,
        HwUpdateMethod::Jacobi,
    ));
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::BankOversubscribed)
        .expect("paper default warns by design");
    assert_eq!(diag.severity(), Severity::Warn, "a trade-off, not an error");

    let mut sim = DetailedSim::new(starved, &sp, HwUpdateMethod::Jacobi).unwrap();
    sim.run(&StopCondition::fixed_steps(1));
    assert!(sim.counters().stall_cycles > 0, "predicted stall is real");

    let mut banked = starved;
    banked.buffer_banks = 64;
    let clean = lint(&LintTarget::planned(banked, 24, 24, HwUpdateMethod::Jacobi));
    assert!(!clean.has(DiagCode::BankOversubscribed));
    let mut sim = DetailedSim::new(banked, &sp, HwUpdateMethod::Jacobi).unwrap();
    sim.run(&StopCondition::fixed_steps(1));
    assert_eq!(sim.counters().stall_cycles, 0, "and it is gone when banked");
}

/// FDX006: more subarrays than interior rows — the surplus chains get no
/// strip, i.e. silicon that can never be busy.
#[test]
fn fdx006_witness_dead_subarrays() {
    let cfg = FdmaxConfig::paper_default();
    let target = LintTarget {
        config: cfg,
        elastic: Some(ElasticConfig {
            subarrays: 8,
            width: 8,
        }),
        rows: 6, // 4 interior rows for 8 chains
        cols: 20,
        method: HwUpdateMethod::Jacobi,
    };
    assert!(lint(&target).has(DiagCode::DeadSubarrays));
    let strips = row_strips(6, 8);
    assert_eq!(strips.len(), 4, "4 of the 8 chains have no work at all");
}

/// FDX007: no interior. The mapping itself refuses the grid, so any
/// bypass dies immediately.
#[test]
fn fdx007_witness_grid_too_small() {
    let cfg = FdmaxConfig::paper_default();
    let report = lint(&LintTarget::planned(cfg, 2, 40, HwUpdateMethod::Jacobi));
    assert!(report.has(DiagCode::GridTooSmall) && report.has_errors());
    assert!(matches!(
        ElasticConfig::try_plan(&cfg, 2, 40),
        Err(FdmaxError::GridTooSmall { .. })
    ));
    assert!(panics(|| {
        row_strips(2, 1);
    }));
}

/// FDX008 (info): Hybrid falls back to Jacobi operands at seams; the
/// seam count follows straight from the mapping, and a seam-free
/// monolithic deployment is not flagged.
#[test]
fn fdx008_witness_hybrid_seams() {
    let cfg = FdmaxConfig::paper_default();
    let seamed = LintTarget::planned(cfg, 200, 200, HwUpdateMethod::Hybrid);
    assert!(lint(&seamed).has(DiagCode::HybridSeamFallback));
    // 198 interior rows on depth-64 sub-FIFOs: multiple blocks per strip.
    let e = ElasticConfig::plan(&cfg, 200, 200);
    let blocks: usize = row_strips(200, e.subarrays)
        .into_iter()
        .map(|s| row_blocks(s, e.sub_fifo_depth(&cfg)).len())
        .sum();
    assert!(
        blocks > 1,
        "the seams the lint reports exist in the mapping"
    );

    let jacobi = LintTarget::planned(cfg, 200, 200, HwUpdateMethod::Jacobi);
    assert!(!lint(&jacobi).has(DiagCode::HybridSeamFallback));
}

/// FDX009 (info): a grid that outgrows the on-chip buffers streams DRAM
/// every iteration — visible as nonzero DRAM traffic in the simulator.
#[test]
fn fdx009_witness_off_chip_resident() {
    let mut cfg = FdmaxConfig::paper_default();
    cfg.buffer_banks = 4;
    cfg.buffer_depth = 4; // 16-element buffers vs a 400-element grid
    let target = LintTarget::planned(cfg, 20, 20, HwUpdateMethod::Jacobi);
    assert!(lint(&target).has(DiagCode::OffChipResident));
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 20, 0).unwrap();
    let mut sim = DetailedSim::new(cfg, &sp, HwUpdateMethod::Jacobi).unwrap();
    sim.run(&StopCondition::fixed_steps(1));
    assert!(sim.counters().dram_read > 0, "the grid really streams");
}

/// FDX011: a service whose queue admits more iterations than the
/// deadline budget covers really does starve its tail job — admitted on
/// time, it reaches the executor with an exhausted budget and only the
/// degraded analytic rung serves. The compliant sizing runs the same
/// submission burst entirely on the full simulator.
#[test]
fn fdx011_witness_service_overcommit() {
    use fdmax::service::{JobSpec, Rung, ServiceConfig, SolveService};

    let mut overcommitted = ServiceConfig::new(FdmaxConfig::paper_default());
    overcommitted.queue_capacity = 3;
    overcommitted.max_job_iterations = 30;
    overcommitted.deadline_iterations = 45; // < 3 x 30
    let report = overcommitted.lint();
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::ServiceOvercommitted)
        .expect("the sizing violates the invariant");
    assert_eq!(diag.severity(), Severity::Warn, "a hazard, not an error");
    assert_eq!(
        fdmax::lint::lint_service(&ServiceSpec {
            queue_capacity: 3,
            max_job_iterations: 30,
            deadline_iterations: 45,
            checkpoint_every: None,
            journal_dir: None,
        })
        .diagnostics()
        .len(),
        1,
        "the standalone entry point agrees"
    );

    let burst = |cfg: ServiceConfig| {
        let mut svc = SolveService::new(cfg);
        let sp = benchmark_problem::<f32>(PdeKind::Laplace, 16, 30).unwrap();
        for _ in 0..3 {
            let _ = svc
                .submit(JobSpec::new(
                    sp.clone(),
                    HwUpdateMethod::Jacobi,
                    StopCondition::fixed_steps(30),
                ))
                .unwrap();
        }
        svc.drain()
    };

    // The flagged sizing: the last job of a full-queue burst burns its
    // whole 45-iteration budget waiting behind 2 x 30 iterations of
    // work and degrades — exactly the hazard FDX011 names.
    let reports = burst(overcommitted);
    assert_eq!(reports[0].served_by(), Some(Rung::Detailed));
    let tail = reports.last().unwrap();
    assert_eq!(tail.served_by(), Some(Rung::Estimate), "tail job starved");
    assert!(tail.degraded());
    assert!(tail.deadline_met(), "degraded, but still on time");

    // The same burst under a compliant sizing is all full-fidelity.
    let mut compliant = ServiceConfig::new(FdmaxConfig::paper_default());
    compliant.queue_capacity = 3;
    compliant.max_job_iterations = 30;
    compliant.deadline_iterations = 90; // = 3 x 30
    assert!(compliant.lint().is_clean());
    let reports = burst(compliant);
    assert!(
        reports
            .iter()
            .all(|r| r.served_by() == Some(Rung::Detailed)),
        "with the invariant honoured no job degrades"
    );
}

/// FDX012 (warn): strips with fewer than 3 output rows stream mostly
/// halo. Each strip reads `height + 2` rows per iteration, so the
/// predicted overhead is real, measurable SRAM traffic: the thin-strip
/// decomposition reads strictly more on-chip memory than a monolithic
/// chain solving the same grid, while producing the same field.
#[test]
fn fdx012_witness_halo_dominated_strips() {
    let cfg = FdmaxConfig::paper_default(); // 64 PEs
    let thin = ElasticConfig {
        subarrays: 8,
        width: 8,
    };
    let mono = ElasticConfig {
        subarrays: 1,
        width: 64,
    };
    let rows = 10; // 8 interior rows: 8 strips of a single output row
    let target = LintTarget {
        config: cfg,
        elastic: Some(thin),
        rows,
        cols: rows,
        method: HwUpdateMethod::Jacobi,
    };
    let report = lint(&target);
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::HaloDominatedStrips)
        .expect("single-row strips are the textbook FDX012 case");
    assert_eq!(diag.severity(), Severity::Warn, "a trade-off, not an error");
    let strips = row_strips(rows, thin.subarrays);
    assert!(
        strips.len() > 1 && strips.iter().all(|s| s.height() == 1),
        "every strip really is one output row between two halo rows"
    );

    // The monolithic deployment of the same silicon is not flagged.
    let coarse = LintTarget {
        elastic: Some(mono),
        ..target
    };
    assert!(!lint(&coarse).has(DiagCode::HaloDominatedStrips));

    // Differential: same problem, same answer, strictly more SRAM reads
    // for the thin strips — the halo overhead the lint predicts.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, rows, 0).unwrap();
    let run = |e: ElasticConfig| {
        let mut sim = DetailedSim::with_elastic(cfg, &sp, HwUpdateMethod::Jacobi, e).unwrap();
        sim.run(&StopCondition::fixed_steps(2));
        sim
    };
    let thin_sim = run(thin);
    let mono_sim = run(mono);
    assert_eq!(
        thin_sim.solution(),
        mono_sim.solution(),
        "the decomposition changes cost, never the answer"
    );
    assert!(
        thin_sim.counters().sram_read > mono_sim.counters().sram_read,
        "thin strips re-read halo rows: {} SRAM reads vs {} monolithic",
        thin_sim.counters().sram_read,
        mono_sim.counters().sram_read
    );
}

/// FDX010: a schedule whose first batch starts mid-grid pops seam FIFOs
/// nothing filled for those columns. Interlocked RTL deadlocks on the
/// empty FIFO; the simulator's queue model instead hands the first PE a
/// partial produced by the *same* batch's last PE one cycle earlier —
/// observable as corrupted outputs and uncomputed columns.
#[test]
fn fdx010_witness_schedule_underflow() {
    let plan = PlanSpec {
        width: 4,
        fifo_depth: 16,
        cols: 12,
        blocks: vec![RowRange {
            out_lo: 1,
            out_hi: 5,
        }],
        batches: vec![ColBatch { c0: 4, c1: 8 }, ColBatch { c0: 8, c1: 12 }],
    };
    assert!(lint_plan(&plan).has(DiagCode::ScheduleUnderflow));

    let n = 12usize;
    let mut cur = Grid2D::<f32>::zeros(n, n);
    for i in 0..n {
        for j in 0..n {
            cur[(i, j)] = (i * 13 + j) as f32 * 0.01;
        }
    }
    let run = |batches: &[ColBatch]| {
        let mut sa = laplace_chain(4, 16);
        let mut next = Grid2D::<f32>::zeros(n, n);
        let mut counters = Default::default();
        sa.run_block(
            plan.blocks[0],
            batches,
            &cur,
            &mut next,
            OffsetSource::None,
            &mut counters,
        );
        next
    };
    let good = run(&col_batches(n, 4));
    let bad = run(&plan.batches);
    assert!(
        bad[(2, 1)] == 0.0 && bad[(2, 2)] == 0.0,
        "columns before the first batch are never computed"
    );
    assert!(
        good[(2, 3)] != bad[(2, 3)] || good[(2, 4)] != bad[(2, 4)],
        "the first batch's seam columns read operands nothing produced \
         for them: the outputs are corrupt"
    );

    // The empty schedule is the degenerate deadlock: nothing ever runs.
    let empty = PlanSpec {
        batches: Vec::new(),
        ..plan.clone()
    };
    assert!(lint_plan(&empty).has(DiagCode::ScheduleUnderflow));
    let idle = run(&[]);
    assert!(
        (0..n).all(|j| idle[(2, j)] == 0.0),
        "no batches, no progress: the solve can never converge"
    );
}

/// FDX014 (warn): the footprint the lint holds against the DRAM budget
/// is the footprint assembly actually allocates (differential at small
/// sizes), an 8192^2 system really exceeds the modeled 4 GiB, and the
/// suggested fix is real: the matrix-free operator path reaches the
/// assembled oracle's answer without building a matrix at all.
#[test]
fn fdx014_witness_krylov_footprint() {
    use fdm::solver::krylov::{conjugate_gradient, matrix_free_cg};
    use fdm::sparse::{csr_footprint_bytes, StencilSystem};

    // The closed-form footprint is the real assembly footprint, byte for
    // byte: nnz entries at 16 B plus the row-pointer array.
    for n in [8usize, 13, 24] {
        let sp = benchmark_problem::<f64>(PdeKind::Poisson, n, 0).unwrap();
        let sys = StencilSystem::assemble(&sp).unwrap();
        let actual = sys.matrix.nnz() as u64 * 16 + (sys.matrix.rows() as u64 + 1) * 8;
        assert_eq!(csr_footprint_bytes(n, n), actual);
    }

    // The 8192^2 deployment trips the lint at Warn against the 4 GiB
    // capacity model...
    let cfg = FdmaxConfig::paper_default();
    let big = LintTarget::planned(cfg, 8192, 8192, HwUpdateMethod::Jacobi);
    let report = lint(&big);
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::KrylovFootprintExceedsDram)
        .expect("an 8192^2 CSR system cannot be DRAM-resident");
    assert_eq!(diag.severity(), Severity::Warn, "avoidable, not fatal");
    assert!(csr_footprint_bytes(8192, 8192) > cfg.dram().capacity_bytes());

    // ...while the random space (n < 41) sits four decimal orders below
    // the budget, so the soundness direction never sees it.
    assert!(csr_footprint_bytes(40, 40) * 10_000 < cfg.dram().capacity_bytes());

    // The suggested fix holds: matrix-free CG solves the same problem to
    // the assembled oracle's answer with no CSR matrix anywhere.
    let sp = benchmark_problem::<f64>(PdeKind::Poisson, 24, 0).unwrap();
    let sys = StencilSystem::assemble(&sp).unwrap();
    let oracle = conjugate_gradient(&sys.matrix, &sys.rhs, 1e-12, 10_000);
    let (_, free) = matrix_free_cg(&sp, 1e-12, 10_000);
    assert!(oracle.converged && free.converged);
    let worst = oracle
        .solution
        .iter()
        .zip(&free.solution)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(worst < 1e-9, "paths disagree by {worst}");
}

/// FDX013: both durability hazards are real, not stylistic.
///
/// * **Warn (cadence)** — a `checkpoint_every` at or beyond the deadline
///   budget can never fire inside any job: the journal of a completed
///   solve holds no `CheckpointTaken` record, so a crash would replay
///   the job from iteration zero. Lowering the cadence below the budget
///   makes checkpoints appear.
/// * **Error (shared dir)** — two services pointed at the same
///   `journal_dir` append to the same write-ahead log. Their records
///   interleave, and the shared journal ends up carrying two *different*
///   jobs under the same job id — the identity corruption recovery
///   cannot untangle.
#[test]
fn fdx013_witness_durability_misconfigured() {
    use fdmax::durability::{read_journal, DurabilityConfig, JournalRecord};
    use fdmax::lint::lint_service_fleet;
    use fdmax::resilience::ResiliencePolicy;
    use fdmax::service::{JobSpec, ServiceConfig, SolveService};
    use memmodel::faults::FaultCampaign;

    let tmpdir = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("fdmax-fdx013-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    // Dense parity-detected flips with a zero retry budget: the detailed
    // rung fails deterministically, so the checkpoint-taking reference
    // rung serves every job.
    let base = |dur: DurabilityConfig| {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(0x0B5E55)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        cfg.with_durability(dur)
    };
    let job = |kind: PdeKind| {
        JobSpec::new(
            benchmark_problem::<f32>(kind, 12, 30).unwrap(),
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(30),
        )
    };
    let checkpoints = |dir: &std::path::Path| {
        read_journal(dir)
            .unwrap()
            .records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CheckpointTaken { .. }))
            .count()
    };

    // Cadence at the deadline budget: flagged, and indeed no checkpoint
    // is ever persisted for a full 30-iteration solve.
    let dir = tmpdir("cadence");
    let flagged = base(DurabilityConfig::new(&dir).with_checkpoint_every(20_000));
    let diag_report = flagged.lint();
    let diag = diag_report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::DurabilityMisconfigured)
        .expect("an unreachable cadence trips FDX013");
    assert_eq!(diag.severity(), Severity::Warn, "a hazard, not an error");
    let mut svc = SolveService::new(flagged);
    let _ = svc.submit(job(PdeKind::Laplace)).unwrap();
    svc.drain();
    assert_eq!(checkpoints(&dir), 0, "the cadence never fires");
    std::fs::remove_dir_all(&dir).unwrap();

    // The compliant cadence on the same workload really checkpoints.
    let dir = tmpdir("compliant");
    let compliant = base(DurabilityConfig::new(&dir).with_checkpoint_every(8));
    assert!(!compliant.lint().has(DiagCode::DurabilityMisconfigured));
    let mut svc = SolveService::new(compliant);
    let _ = svc.submit(job(PdeKind::Laplace)).unwrap();
    svc.drain();
    assert!(checkpoints(&dir) > 0, "below the budget the cadence fires");
    std::fs::remove_dir_all(&dir).unwrap();

    // Shared journal_dir: the fleet lint refuses it outright...
    let dir = tmpdir("shared");
    let a = base(DurabilityConfig::new(&dir).with_checkpoint_every(8));
    let b = base(DurabilityConfig::new(&dir).with_checkpoint_every(8));
    let fleet = lint_service_fleet(&[a.lint_spec(), b.lint_spec()]);
    assert!(
        fleet.has(DiagCode::DurabilityMisconfigured) && fleet.has_errors(),
        "a shared journal dir is an Error, not a warning"
    );

    // ...and for cause: two services drain two different jobs into the
    // same log, which then claims both under the same job id.
    let mut svc_a = SolveService::new(a);
    let mut svc_b = SolveService::new(b);
    let _ = svc_a.submit(job(PdeKind::Laplace)).unwrap();
    let _ = svc_b.submit(job(PdeKind::Poisson)).unwrap();
    svc_a.drain();
    svc_b.drain();
    let specs: Vec<_> = read_journal(&dir)
        .unwrap()
        .records
        .into_iter()
        .filter_map(|r| match r {
            JournalRecord::Submitted { id, spec, .. } => Some((id, spec)),
            _ => None,
        })
        .collect();
    assert_eq!(specs.len(), 2, "both services journalled an admission");
    assert_eq!(specs[0].0, specs[1].0, "the same job id twice");
    assert_ne!(specs[0].1, specs[1].1, "...naming two different jobs");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// FDX015: a tolerance job whose sweep *lower* bound (and Krylov lower
/// bound) exceed the deadline budget is rejected at admission — and for
/// cause: with the gate bypassed the job burns its whole budget without
/// converging and only the analytic rung serves.
#[test]
fn fdx015_witness_convergence_budget_infeasible() {
    use fdmax::service::{JobSpec, Rung, ServiceConfig, SolveService, SubmitError};

    let job = || {
        JobSpec::new(
            benchmark_problem::<f32>(PdeKind::Laplace, 96, 0).unwrap(),
            HwUpdateMethod::Jacobi,
            StopCondition::tolerance(1e-8, 100_000),
        )
    };
    let starved = || {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 10; // vs a >= 23-iteration Krylov floor
        cfg.max_job_iterations = 10_000;
        cfg
    };

    // The static side: the analyzer proves no rung fits and the service
    // refuses the job at the door.
    let mut svc = SolveService::new(starved());
    let err = svc.submit(job()).unwrap_err();
    let SubmitError::Rejected(FdmaxError::Lint { report }) = err else {
        panic!("expected a lint rejection, got {err}");
    };
    let diag = report
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::ConvergenceBudgetInfeasible)
        .expect("a 10-iteration budget cannot host a 96x96 1e-8 solve");
    assert_eq!(diag.severity(), Severity::Error, "no rung fits: an error");
    assert_eq!(svc.stats().refused, 1);
    assert_eq!(svc.stats().submitted, 0);

    // The dynamic side: bypassing the gate, the job reaches the executor,
    // exhausts the budget on the first rung, and degrades to the analytic
    // estimate without ever converging — exactly the outcome the
    // analyzer priced in.
    let mut cfg = starved();
    cfg.admission_analysis = false; // bypass the gate to observe the miss
    let mut svc = SolveService::new(cfg);
    let _ = svc.submit(job()).unwrap();
    let reports = svc.drain();
    let r = reports.last().unwrap();
    assert_eq!(
        r.served_by(),
        Some(Rung::Estimate),
        "every real rung starved"
    );
    assert!(!r.converged, "the tolerance was never reached");
    assert!(r.degraded());

    // A generous deadline admits the identical job.
    let mut roomy = starved();
    roomy.deadline_iterations = 100_000;
    let mut svc = SolveService::new(roomy);
    assert!(
        svc.submit(job()).is_ok(),
        "the budget was the only objection"
    );
}

/// FDX016: a tolerance below the f32 update-norm floor is rejected
/// statically; bypassing the gate, every f32 sweep rung stalls under the
/// watchdog at the plateau the floor predicts — the solve can only end
/// by watchdog, never by convergence on those rungs.
#[test]
fn fdx016_witness_precision_floor_violated() {
    use fdmax::resilience::ResiliencePolicy;
    use fdmax::service::{
        AttemptDisposition, JobSpec, Rung, ServiceConfig, SolveService, SubmitError,
    };
    use memmodel::faults::FaultCampaign;

    // 48x48 matters: smaller grids land on an *exact* f32 fixed point
    // (update norm identically zero), while 46^2 interior cells plateau
    // at a nonzero cycle a few orders above 1e-12 — the regime the floor
    // model prices.
    let job = |tol: f64| {
        JobSpec::new(
            benchmark_problem::<f32>(PdeKind::Laplace, 48, 0).unwrap(),
            HwUpdateMethod::Hybrid,
            StopCondition::tolerance(tol, 8_000),
        )
    };
    let base = || {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.max_job_iterations = 8_000;
        cfg.deadline_iterations = 100_000;
        cfg.stall_window = 40;
        cfg.stall_min_decay = 0.9;
        cfg
    };

    // Statically: 1e-12 sits far below the f32 floor on a 48x48 grid.
    let mut svc = SolveService::new(base());
    let err = svc.submit(job(1e-12)).unwrap_err();
    let SubmitError::Rejected(FdmaxError::Lint { report }) = err else {
        panic!("expected a lint rejection, got {err}");
    };
    assert!(
        report.has(DiagCode::PrecisionFloorViolated) && report.has_errors(),
        "an unattainable tolerance is an error:\n{report}"
    );
    assert_eq!(svc.stats().refused, 1);

    // Dynamically: with the gate bypassed (and the detailed rung failed
    // fast by a zero-retry fault campaign so the run stays cheap), the
    // f32 sweep chain hits the plateau and the stall watchdog — not the
    // tolerance — ends every sweep attempt, so if anything serves the
    // job it is a rung past the sweeps (the f64 Krylov solver or the
    // analytic estimate).
    let mut cfg = base();
    cfg.admission_analysis = false; // bypass the gate to observe the stall
    cfg.campaign = FaultCampaign {
        sram_flips_per_iteration: 5.0,
        dma_failure_prob: 0.0,
        ..FaultCampaign::harsh(0x0B5E55)
    };
    cfg.policy = ResiliencePolicy {
        max_retries: 0,
        ..ResiliencePolicy::default()
    };
    let mut svc = SolveService::new(cfg);
    let _ = svc.submit(job(1e-12)).unwrap();
    let reports = svc.drain();
    let r = reports.last().unwrap();
    assert!(
        r.attempts.iter().any(|a| matches!(
            a.disposition,
            AttemptDisposition::Failed(FdmaxError::Stalled { .. })
        )),
        "some sweep rung stalled at the f32 plateau: {:?}",
        r.attempts
    );
    if let Some(rung) = r.served_by() {
        assert!(
            rung.index() >= Rung::Krylov.index(),
            "no f32 sweep rung can have reached 1e-12, yet {rung} served"
        );
    }

    // The same job class above the floor is admitted and served,
    // converged, by a fault-free service: the floor was the only
    // objection.
    let mut svc = SolveService::new(base());
    let _ = svc.submit(job(1e-2)).unwrap();
    let reports = svc.drain();
    assert!(reports.last().unwrap().converged);
}

/// FDX017: a checkpoint cadence that fits under the deadline (so FDX013
/// stays silent) but above the job class's completion window persists
/// zero checkpoints for every job — durability that can never pay out.
#[test]
fn fdx017_witness_checkpoint_cadence_mismatch() {
    use fdmax::durability::{read_journal, DurabilityConfig, JournalRecord};
    use fdmax::resilience::ResiliencePolicy;
    use fdmax::service::{JobSpec, ServiceConfig, SolveService};
    use memmodel::faults::FaultCampaign;

    let tmpdir = |tag: &str| {
        let dir = std::env::temp_dir().join(format!("fdmax-fdx017-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    };
    // As in the FDX013 witness: a zero-retry harsh campaign pushes every
    // job onto the checkpoint-taking reference rung.
    let base = |dur: DurabilityConfig| {
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.deadline_iterations = 20_000;
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(0x0B5E55)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        cfg.with_durability(dur)
    };
    let job = || {
        JobSpec::new(
            benchmark_problem::<f32>(PdeKind::Laplace, 12, 30).unwrap(),
            HwUpdateMethod::Jacobi,
            StopCondition::fixed_steps(30),
        )
    };
    let checkpoints = |dir: &std::path::Path| {
        read_journal(dir)
            .unwrap()
            .records
            .iter()
            .filter(|r| matches!(r, JournalRecord::CheckpointTaken { .. }))
            .count()
    };

    // Cadence 10_000 on a 30-step job class: under the 20_000 deadline
    // (FDX013 is silent) yet far beyond the completion window. Only the
    // plan-aware analyzer sees the mismatch.
    let dir = tmpdir("mismatch");
    let flagged = base(DurabilityConfig::new(&dir).with_checkpoint_every(10_000));
    assert!(
        !flagged.lint().has(DiagCode::DurabilityMisconfigured),
        "the cadence respects the deadline, so FDX013 cannot catch this"
    );
    let plan = SolvePlan {
        rows: 12,
        cols: 12,
        method: HwUpdateMethod::Jacobi,
        tolerance: None,
        requested_iterations: 30,
        precision: PrecisionClass::F32,
        steady_state: true,
        scale: 1.0,
        parallel_threads: 4,
        tile_depth: 1,
    };
    let report = analyze_plan(
        &plan,
        &FdmaxConfig::paper_default(),
        Some(&flagged.lint_spec()),
    );
    let diag = report
        .lint()
        .diagnostics()
        .iter()
        .find(|d| d.code == DiagCode::CheckpointCadenceMismatch)
        .expect("a cadence above the completion window trips FDX017");
    assert_eq!(diag.severity(), Severity::Warn, "wasteful, not unsound");

    // And for cause: a full drain of the flagged service persists no
    // checkpoint at all, while a cadence inside the window really does.
    let mut svc = SolveService::new(flagged);
    let _ = svc.submit(job()).unwrap();
    svc.drain();
    assert_eq!(checkpoints(&dir), 0, "durability never pays out");
    std::fs::remove_dir_all(&dir).unwrap();

    let dir = tmpdir("inside-window");
    let compliant = base(DurabilityConfig::new(&dir).with_checkpoint_every(8));
    let report = analyze_plan(
        &plan,
        &FdmaxConfig::paper_default(),
        Some(&compliant.lint_spec()),
    );
    assert!(!report.lint().has(DiagCode::CheckpointCadenceMismatch));
    let mut svc = SolveService::new(compliant);
    let _ = svc.submit(job()).unwrap();
    svc.drain();
    assert!(checkpoints(&dir) > 0, "inside the window the cadence fires");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// FDX018: the race certifier is exact on both sides.
///
/// * Every band plan the engine actually derives certifies clean, and
///   the parallel engine is bit-identical to the serial one — grids and
///   residual history — at any thread count.
/// * A hand-built aliasing plan is refused, and for cause: sweeping it
///   sequentially (Jacobi writes are deterministic, so the field is
///   unchanged) still folds the shared row's diff-squared partial twice,
///   so the residual the convergence decision runs on is wrong.
#[test]
fn fdx018_witness_band_plan_race() {
    use fdm::engine::{ParallelSweepEngine, SolveEngine, SweepEngine};
    use fdm::kernels::{jacobi_row, OffsetRow};
    use fdm::solver::UpdateMethod;

    // Soundness of "clean": derived plans certify, and the parallel
    // engine they describe matches the serial engine bit for bit.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 10, 0).unwrap();
    for threads in [1usize, 3, 8] {
        let plan = BandPlan::from_threads(10, 10, threads);
        assert!(
            certify_band_plan(&plan).is_clean(),
            "a derived plan certifies clean at {threads} thread(s)"
        );
        let mut par = ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, threads);
        assert_eq!(plan.bands, par.bands(), "the certifier saw the real plan");
        let mut ser = SweepEngine::new(&sp, UpdateMethod::Jacobi);
        for _ in 0..6 {
            let a = par.step().norm;
            let b = ser.step().norm;
            assert_eq!(
                a.map(f64::to_bits),
                b.map(f64::to_bits),
                "fixed-order fold: residuals agree bitwise"
            );
        }
        assert_eq!(par.solution(), ser.solution());
    }
    // Single-band degenerate plans are sound (and separately warned as a
    // dead rung by FDX019).
    assert_eq!(BandPlan::from_threads(10, 10, 1).bands.len(), 1);

    // The aliasing plan: rejected as an error...
    let alias = BandPlan {
        rows: 10,
        cols: 10,
        bands: vec![1..5, 4..9],
    };
    let report = certify_band_plan(&alias);
    assert!(
        report.has(DiagCode::BandPlanRace) && report.has_errors(),
        "aliased rows are a correctness error:\n{report}"
    );

    // ...and for cause. Sweep a fully mixed field once under both plans:
    // the aliased fold visits row 4 twice, so the banded residual
    // diverges from the serial one even though the output field is
    // identical (the duplicated Jacobi write is deterministic).
    let mut cur = Grid2D::<f32>::zeros(10, 10);
    for i in 0..10 {
        for j in 0..10 {
            cur[(i, j)] = ((i * 31 + j * 17) % 19) as f32 * 0.05;
        }
    }
    let sweep = |bands: &[core::ops::Range<usize>]| -> (Grid2D<f32>, f64) {
        let mut next = cur.clone();
        let mut folded = 0.0f64;
        for band in bands {
            for i in band.clone() {
                let b = OffsetRow::for_row(&sp.offset, None, i);
                let mut out = cur.row(i).to_vec();
                folded += jacobi_row(
                    &sp.stencil,
                    cur.row(i - 1),
                    cur.row(i),
                    cur.row(i + 1),
                    b,
                    &mut out,
                );
                next.row_mut(i).copy_from_slice(&out);
            }
        }
        (next, folded)
    };
    let serial_band = 1..9;
    let (serial_grid, serial_residual) = sweep(std::slice::from_ref(&serial_band));
    let (alias_grid, alias_residual) = sweep(&alias.bands);
    assert_eq!(alias_grid, serial_grid, "the field itself is unharmed");
    assert!(
        alias_residual > serial_residual,
        "the shared row folds twice: {alias_residual} vs {serial_residual} \
         — the convergence decision reads a residual no serial sweep \
         would ever produce"
    );
}

/// FDX019: both dead-rung findings are operational facts, not style.
/// A time-stepping job really does skip the Krylov rung as not
/// applicable, and a single-thread service really does run the strip-
/// parallel rung as one serial band.
#[test]
fn fdx019_witness_dead_fallback_rungs() {
    use fdm::engine::ParallelSweepEngine;
    use fdm::solver::UpdateMethod;
    use fdmax::service::{AttemptDisposition, JobSpec, Rung, ServiceConfig, SolveService};

    // Statically: a transient plan and a single-thread plan each get
    // their own FDX019 finding.
    let plan = SolvePlan {
        rows: 12,
        cols: 12,
        method: HwUpdateMethod::Jacobi,
        tolerance: Some(1e-4),
        requested_iterations: 500,
        precision: PrecisionClass::F32,
        steady_state: false,
        scale: 1.0,
        parallel_threads: 1,
        tile_depth: 1,
    };
    let report = analyze_plan(&plan, &FdmaxConfig::paper_default(), None);
    let dead: Vec<_> = report
        .lint()
        .diagnostics()
        .iter()
        .filter(|d| d.code == DiagCode::DeadFallbackRungs)
        .collect();
    assert!(dead.iter().any(|d| d.field == "pde"), "the Krylov rung");
    assert!(
        dead.iter().any(|d| d.field == "parallel_threads"),
        "the degenerate parallel rung"
    );
    assert!(dead.iter().all(|d| d.severity() == Severity::Warn));

    // Dynamically (Krylov): drive a transient job down the whole chain
    // (a NaN-poisoned field fails every numeric rung) and the trace
    // shows Krylov skipped as not applicable — exactly the dead rung the
    // analyzer named.
    let mut poisoned = benchmark_problem::<f32>(PdeKind::Heat, 12, 8).unwrap();
    poisoned.initial.as_mut_slice().fill(f32::NAN);
    let mut svc = SolveService::new(ServiceConfig::new(FdmaxConfig::paper_default()));
    let _ = svc.submit(JobSpec::new(
        poisoned,
        HwUpdateMethod::Jacobi,
        StopCondition::fixed_steps(8),
    ));
    let reports = svc.drain();
    let r = reports.last().unwrap();
    assert!(
        r.attempts
            .iter()
            .any(|a| a.rung == Rung::Krylov
                && a.disposition == AttemptDisposition::SkippedNotApplicable),
        "the Krylov rung is operationally dead for transient jobs: {:?}",
        r.attempts
    );

    // Dynamically (parallel): at one thread the strip-parallel engine
    // degenerates to a single serial band.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 12, 0).unwrap();
    let engine = ParallelSweepEngine::new(&sp, UpdateMethod::Jacobi, 1);
    assert_eq!(engine.bands().len(), 1, "one band: the same serial engine");
}

/// FDX020: the quota overcommit is an operational fact, not style. A
/// pool of 2 workers whose tenants are promised 4 concurrent jobs
/// serves at most 2 per scheduler round — the fair scheduler
/// arbitrates the shortfall — while a pool sized to the promise serves
/// every quota in the same round (and clears the lint).
#[test]
fn fdx020_witness_tenant_quota_overcommit() {
    use fdmax::service::frontend::{Frontend, FrontendConfig, TenantConfig};
    use fdmax::service::{JobSpec, ServiceConfig, TenantId};

    let build = |workers: usize| {
        let promise = TenantConfig {
            weight: 2,
            max_in_flight: 2,
            ..TenantConfig::default()
        };
        FrontendConfig::new(ServiceConfig::new(FdmaxConfig::paper_default()), workers)
            .with_tenant(TenantId(1), promise)
            .with_tenant(TenantId(2), promise)
    };

    // Statically: 2 + 2 promised on 2 workers is an overcommit warning;
    // 4 workers clears it.
    let report = build(2).lint();
    assert!(
        report.has(DiagCode::TenantQuotaOvercommit),
        "2+2 on 2 workers overcommits:\n{report}"
    );
    assert!(!build(4).lint().has(DiagCode::TenantQuotaOvercommit));
    assert!(
        report.worst() == Some(Severity::Warn),
        "arbitrated, not broken"
    );

    // Dynamically: both tenants fill their in-flight quota. The
    // overcommitted pool can serve only 2 of the 4 promised jobs in the
    // first scheduler round; the right-sized pool serves all 4 at once.
    let served_in_first_round = |workers: usize| -> usize {
        let mut fe = Frontend::new(build(workers));
        for t in [1u64, 2] {
            for _ in 0..2 {
                let sp = benchmark_problem::<f32>(PdeKind::Laplace, 12, 0).unwrap();
                let spec = JobSpec::new(sp, HwUpdateMethod::Jacobi, StopCondition::fixed_steps(6))
                    .with_tenant(TenantId(t));
                let _ = fe.submit(spec).expect("within max_queued quota");
            }
        }
        fe.run_round().len()
    };
    assert_eq!(
        served_in_first_round(2),
        2,
        "2 workers arbitrate the 4-job promise"
    );
    assert_eq!(
        served_in_first_round(4),
        4,
        "4 workers honor every quota at once"
    );
}

/// FDX021: a hedged chain entered at the Krylov rung is vacuous — the
/// hedge pairs live at Reference/Parallel/Software, so no attempt can
/// ever arm the trigger — while the identical hedge policy on a
/// Reference-entry chain demonstrably launches a race under the same
/// job mix.
#[test]
fn fdx021_witness_vacuous_hedge() {
    use fdmax::service::{HedgeConfig, JobSpec, Rung, ServiceConfig, ServiceStats, SolveService};

    // Statically: hedge + Krylov entry warns, hedge + Reference entry
    // is clean (the disabled-hedge spec is always clean).
    let spec = |entry: Rung| FrontendSpec {
        workers: 1,
        tenant_in_flight_quotas: Vec::new(),
        hedge_enabled: true,
        entry_rung_index: entry.index(),
    };
    let report = lint_frontend(&spec(Rung::Krylov));
    assert!(
        report.has(DiagCode::VacuousHedge),
        "hedge + Krylov entry is vacuous:\n{report}"
    );
    assert!(!lint_frontend(&spec(Rung::Reference)).has(DiagCode::VacuousHedge));

    // Dynamically: the same hedge policy (arm at four samples, hedge
    // the slowest half) over the same job mix — four quick solves to
    // seed the entry rung's latency ring, then one slow enough to
    // outlast the trigger.
    let hedged = |entry: Rung| -> ServiceStats {
        let config = ServiceConfig::new(FdmaxConfig::paper_default()).with_hedge(HedgeConfig {
            percentile: 50,
            min_samples: 4,
        });
        let mut svc = SolveService::new(config);
        for steps in [4, 4, 4, 4, 64] {
            let sp = benchmark_problem::<f32>(PdeKind::Laplace, 12, 0).unwrap();
            let _ = svc.submit(
                JobSpec::new(
                    sp,
                    HwUpdateMethod::Jacobi,
                    StopCondition::fixed_steps(steps),
                )
                .with_entry_rung(entry),
            );
        }
        let _ = svc.drain();
        svc.stats()
    };
    let live = hedged(Rung::Reference);
    assert!(
        live.hedges_launched >= 1,
        "the Reference-entry chain races its slow attempt: {live:?}"
    );
    let vacuous = hedged(Rung::Krylov);
    assert_eq!(
        vacuous.hedges_launched, 0,
        "the Krylov-entry chain never launches a hedge: {vacuous:?}"
    );
}

/// FDX022: the tile-depth geometry findings are operational facts.
///
/// * A depth at or past the interior height (Error) really does
///   collapse the tiled engine's halo-aware band split to one serial
///   band, whatever thread count was requested — the rung degenerates
///   exactly as the analyzer says (while staying bitwise correct).
/// * A depth that merely crowds the requested threads (Warn) sheds
///   bands below the thread count.
/// * A depth past the per-job iteration cap (Warn) truncates every
///   epoch: the engine never executes a full fused pass.
#[test]
fn fdx022_witness_tile_depth_geometry() {
    use fdm::engine::{SolveEngine, SweepEngine};
    use fdm::solver::UpdateMethod;
    use fdm::tiled::TiledSweepEngine;

    let plan = |rows: usize, threads: usize, k: usize| SolvePlan {
        rows,
        cols: 16,
        method: HwUpdateMethod::Jacobi,
        tolerance: None,
        requested_iterations: 64,
        precision: PrecisionClass::F32,
        steady_state: true,
        scale: 1.0,
        parallel_threads: threads,
        tile_depth: k,
    };
    let geometry = |p: &SolvePlan| -> Vec<Severity> {
        analyze_plan(p, &FdmaxConfig::paper_default(), None)
            .lint()
            .diagnostics()
            .iter()
            .filter(|d| d.code == DiagCode::TileDepthGeometry)
            .map(|d| d.severity())
            .collect()
    };

    // Statically: halo >= interior is an Error, a crowded band split is
    // a Warn, and a roomy grid (or a disabled rung) is clean.
    assert_eq!(geometry(&plan(10, 2, 8)), [Severity::Error]);
    assert_eq!(geometry(&plan(19, 7, 4)), [Severity::Warn]);
    assert_eq!(geometry(&plan(130, 4, 4)), []);
    assert_eq!(geometry(&plan(10, 2, 1)), [], "depth 1 disables the rung");

    // Dynamically (Error): on the 10-row grid the 8-deep halo leaves
    // room for a single band — the requested 2 threads are shed and the
    // epoch runs serially, though still bitwise correct.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 10, 0).unwrap();
    let mut tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 8, 2);
    assert_eq!(tiled.bands().len(), 1, "the band split is dead");
    let mut serial = SweepEngine::new(&sp, UpdateMethod::Jacobi);
    tiled.step();
    for _ in 0..8 {
        serial.step();
    }
    assert_eq!(tiled.solution(), serial.solution(), "correct, just serial");

    // Dynamically (Warn, band collapse): 17 interior rows at depth 4
    // hold at most 4 halo-safe bands, not the 7 requested.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 19, 0).unwrap();
    let tiled = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 4, 7);
    let bands = tiled.bands().len();
    assert!(
        bands < 7 && bands <= 17 / 4,
        "the halo-aware split sheds parallelism: {bands} bands"
    );

    // Dynamically (Warn, cap): a depth-8 engine capped at 5 iterations
    // truncates its very first epoch.
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 16, 0).unwrap();
    let mut capped = TiledSweepEngine::new(&sp, UpdateMethod::Jacobi, 8, 1).with_iteration_cap(5);
    capped.step();
    assert_eq!(
        capped.iterations(),
        5,
        "every epoch falls short of the configured depth"
    );
    let spec = ServiceSpec {
        queue_capacity: 1,
        max_job_iterations: 5,
        deadline_iterations: 20_000,
        checkpoint_every: None,
        journal_dir: None,
    };
    let report = analyze_plan(&plan(64, 1, 8), &FdmaxConfig::paper_default(), Some(&spec));
    assert!(
        report
            .lint()
            .diagnostics()
            .iter()
            .any(|d| d.code == DiagCode::TileDepthGeometry && d.severity() == Severity::Warn),
        "the cap mismatch warns"
    );
}
