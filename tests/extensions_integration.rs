//! Cross-crate integration tests for the beyond-the-paper extensions:
//! the 3-D plane-sweep pipeline, multigrid smoother choices, the cycle
//! tracer, the design-space explorer and grid I/O.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::solver::multigrid::{solve_multigrid, MultigridConfig, Smoother};
use fdm::solver::{solve, UpdateMethod};
use fdm::volume::{laplace3d_benchmark, plane_pass_sweep, SevenPointStencil};
use fdm::workload::benchmark_problem;
use fdmax::config::FdmaxConfig;
use fdmax::dse::{evaluate, pareto_frontier, sweep, ProbeWorkload};
use fdmax::volume::VolumeSolver;

#[test]
fn volume_solver_matches_software_across_iterations() {
    // Multiple 3-D iterations with buffer rotation, bit-for-bit.
    let n = 11;
    let stencil = SevenPointStencil::<f32>::laplace_uniform();
    let mut hw_cur = laplace3d_benchmark::<f32>(n, n, n);
    let mut hw_next = hw_cur.clone();
    let mut sw_cur = hw_cur.clone();
    let mut sw_next = hw_cur.clone();
    let mut vs = VolumeSolver::new(FdmaxConfig::paper_default(), n, n).unwrap();
    for _ in 0..7 {
        vs.step(&stencil, &hw_cur, &mut hw_next);
        core::mem::swap(&mut hw_cur, &mut hw_next);
        plane_pass_sweep(&stencil, &sw_cur, &mut sw_next);
        core::mem::swap(&mut sw_cur, &mut sw_next);
    }
    assert_eq!(hw_cur, sw_cur, "3-D hardware and software diverged");
    assert_eq!(vs.iterations(), 7);
}

#[test]
fn multigrid_smoothers_agree_on_the_solution() {
    let sp = benchmark_problem::<f64>(PdeKind::Laplace, 65, 0).unwrap();
    let reference = solve(
        &sp,
        UpdateMethod::GaussSeidel,
        &StopCondition::tolerance(1e-11, 2_000_000),
    );
    for smoother in [
        Smoother::GaussSeidel,
        Smoother::Hybrid,
        Smoother::DampedJacobi { omega: 0.8 },
    ] {
        let cfg = MultigridConfig {
            pre_smooth: 3,
            post_smooth: 3,
            coarse_smooth: 60,
            smoother,
            ..MultigridConfig::default()
        };
        let mg = solve_multigrid(&sp, &cfg, &StopCondition::tolerance(1e-10, 100));
        assert!(mg.converged(), "{smoother:?} did not converge");
        assert!(
            mg.solution().diff_max(reference.solution()) < 1e-6,
            "{smoother:?} found a different solution"
        );
    }
}

#[test]
fn multigrid_cycle_count_is_grid_size_independent() {
    // The defining multigrid property, across three refinements.
    let cycles: Vec<usize> = [33usize, 65, 129]
        .iter()
        .map(|&n| {
            let sp = benchmark_problem::<f64>(PdeKind::Laplace, n, 0).unwrap();
            let r = solve_multigrid(
                &sp,
                &MultigridConfig::default(),
                &StopCondition::tolerance(1e-8, 60),
            );
            assert!(r.converged(), "n={n}");
            r.iterations()
        })
        .collect();
    let spread = cycles.iter().max().unwrap() - cycles.iter().min().unwrap();
    assert!(
        spread <= 3,
        "V-cycle counts should barely move with size: {cycles:?}"
    );
}

#[test]
fn dse_contains_the_paper_default_on_the_area_frontier() {
    let workload = ProbeWorkload::laplace_10k();
    let points = sweep(
        &workload,
        &[4, 6, 8, 10, 12],
        &[8, 16, 32, 64],
        &[64],
        &[128.0],
    );
    let frontier = pareto_frontier(&points, |p| p.area_mm2);
    let default = evaluate(&FdmaxConfig::paper_default(), &workload);
    // The paper's design point must not be strictly dominated by any
    // swept design.
    let dominated = points.iter().any(|p| {
        p.area_mm2 < default.area_mm2 * 0.999
            && p.updates_per_second > default.updates_per_second * 1.001
    });
    assert!(!dominated, "the paper's default is strictly dominated");
    assert!(!frontier.is_empty());
}

#[test]
fn trace_reproduces_the_fig6_protocol_on_the_paper_shape() {
    // A 1x3 chain like the paper's Fig. 6 example.
    use fdm::grid::Grid2D;
    use fdm::stencil::FivePointStencil;
    use fdmax::array::{OffsetSource, Subarray};
    use fdmax::mapping::{col_batches, RowRange};
    use fdmax::pe::PeConfig;
    use fdmax::trace::{Trace, TraceEvent};
    use memmodel::EventCounters;

    let n = 9;
    let cur = Grid2D::from_fn(n, n, |i, j| ((i * 3 + j) % 4) as f32 * 0.25);
    let mut next = cur.clone();
    let mut chain = Subarray::new(
        3,
        PeConfig::new(FivePointStencil::new(0.25f32, 0.25, 0.0), false, false),
        64,
    );
    let mut counters = EventCounters::new();
    let mut trace = Trace::new();
    chain.run_block_traced(
        RowRange {
            out_lo: 1,
            out_hi: n - 1,
        },
        &col_batches(n, 3),
        &cur,
        &mut next,
        OffsetSource::None,
        &mut counters,
        Some(&mut trace),
    );
    // 3 batches x (7 + 2 + 1) cycles.
    assert_eq!(trace.len(), 3 * 10);
    // Every HaloComplete value matches NextBuffer; every kept
    // Stage2Complete too.
    for e in trace.events() {
        match e {
            TraceEvent::HaloComplete { col, row, value }
            | TraceEvent::Stage2Complete {
                col,
                row,
                value,
                kept: true,
                ..
            } => {
                assert_eq!(next[(*row, *col)], *value);
            }
            _ => {}
        }
    }
    // The rendered walkthrough mentions the §5 landmarks.
    let text = trace.to_string();
    assert!(text.contains("NULL cycle"));
    assert!(text.contains("HaloAdder"));
}

#[test]
fn csv_round_trips_an_accelerator_solution() {
    use fdm::io::{read_csv, write_csv};
    use fdmax::accelerator::{Accelerator, HwUpdateMethod};
    let sp = benchmark_problem::<f32>(PdeKind::Laplace, 24, 0).unwrap();
    let accel = Accelerator::new(FdmaxConfig::paper_default()).unwrap();
    let out = accel
        .solve_with(&sp, HwUpdateMethod::Jacobi, &StopCondition::fixed_steps(20))
        .expect("valid problem");
    let mut buf = Vec::new();
    write_csv(&out.solution, &mut buf).unwrap();
    let back: fdm::grid::Grid2D<f32> = read_csv(&buf[..]).unwrap();
    assert_eq!(back, out.solution, "CSV round trip must be exact");
}

/// The 3-D hardware pipeline stays bit-exact against software on
/// random stencils (heat-like, with self term) and volume shapes.
#[test]
fn volume_solver_bitwise_on_random_stencils() {
    use fdm::volume::Grid3D;
    for seed in 0u64..8 {
        let mut rng = DetRng::seed_from_u64(seed);
        let p = rng.gen_range(3, 6);
        let m = rng.gen_range(4, 12);
        let n = rng.gen_range(4, 12);
        let r = rng.gen_f64(0.01, 0.16);
        let stencil = SevenPointStencil::<f32> {
            w_v: r as f32,
            w_h: r as f32,
            w_z: r as f32,
            w_s: (1.0 - 6.0 * r) as f32,
        };
        let cur = Grid3D::from_fn(p, m, n, |_, _, _| rng.gen_f64(-1.0, 1.0) as f32);
        let mut hw = cur.clone();
        let mut sw = cur.clone();
        let mut vs = VolumeSolver::new(FdmaxConfig::paper_default(), m, n).unwrap();
        vs.step(&stencil, &cur, &mut hw);
        plane_pass_sweep(&stencil, &cur, &mut sw);
        assert_eq!(hw, sw, "seed {seed}");
    }
}
