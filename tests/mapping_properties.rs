//! Property-style tests for `fdmax::mapping` — the tiling arithmetic the
//! elaboration-time lint, the cycle-accurate simulator and the analytic
//! performance model all share.
//!
//! The external proptest stack is unavailable offline, so the harness
//! draws cases from the workspace's deterministic [`DetRng`]; every
//! failure reproduces from the fixed seed. The invariants here are
//! exactly the ones `fdmax::lint::lint_plan` assumes, which is what lets
//! the differential harness (`tests/lint_differential.rs`) conclude that
//! planner-derived schedules are lint-clean by construction.

use detrng::DetRng;
use fdmax::config::FdmaxConfig;
use fdmax::elastic::ElasticConfig;
use fdmax::lint::{lint_plan, PlanSpec};
use fdmax::mapping::{col_batches, row_blocks, row_strips, tile_cycles, RowRange};

const CASES: usize = 500;

/// Strips tile the interior `[1, rows-1)` contiguously, in order, with
/// heights differing by at most one, and never outnumber the interior.
#[test]
fn row_strips_partition_the_interior() {
    let mut rng = DetRng::seed_from_u64(1001);
    for _ in 0..CASES {
        let rows = rng.gen_range(3, 200);
        let subarrays = rng.gen_range(1, 20);
        let strips = row_strips(rows, subarrays);
        let interior = rows - 2;
        assert_eq!(strips.len(), subarrays.min(interior));
        assert_eq!(strips[0].out_lo, 1, "starts at the first interior row");
        assert_eq!(strips.last().unwrap().out_hi, rows - 1, "ends at the last");
        for w in strips.windows(2) {
            assert_eq!(w[0].out_hi, w[1].out_lo, "contiguous");
        }
        let total: usize = strips.iter().map(RowRange::height).sum();
        assert_eq!(total, interior, "every interior row is owned once");
        let hmin = strips.iter().map(RowRange::height).min().unwrap();
        let hmax = strips.iter().map(RowRange::height).max().unwrap();
        assert!(hmax - hmin <= 1, "balanced: {hmin}..{hmax}");
        assert!(hmin >= 1, "no empty strips");
    }
}

/// A grid smaller than the array: surplus subarrays simply get no strip
/// (the lint reports them as FDX006), never an empty or phantom one.
#[test]
fn row_strips_grid_smaller_than_array() {
    for rows in 3..6 {
        let strips = row_strips(rows, 16);
        assert_eq!(strips.len(), rows - 2);
        for (k, s) in strips.iter().enumerate() {
            assert_eq!((s.out_lo, s.out_hi), (1 + k, 2 + k), "one row each");
        }
    }
}

/// Blocks tile their strip in order; every block fits the FIFO and only
/// the last may be the remainder.
#[test]
fn row_blocks_tile_the_strip_within_fifo_depth() {
    let mut rng = DetRng::seed_from_u64(1002);
    for _ in 0..CASES {
        let lo = rng.gen_range(1, 50);
        let height = rng.gen_range(1, 300);
        let strip = RowRange {
            out_lo: lo,
            out_hi: lo + height,
        };
        let depth = rng.gen_range(1, 70);
        let blocks = row_blocks(strip, depth);
        assert_eq!(blocks.len(), height.div_ceil(depth));
        assert_eq!(blocks[0].out_lo, strip.out_lo);
        assert_eq!(blocks.last().unwrap().out_hi, strip.out_hi);
        for w in blocks.windows(2) {
            assert_eq!(w[0].out_hi, w[1].out_lo, "contiguous");
        }
        for (k, b) in blocks.iter().enumerate() {
            assert!(b.height() >= 1 && b.height() <= depth);
            if k + 1 < blocks.len() {
                assert_eq!(b.height(), depth, "only the last block is short");
            }
        }
        // The cycle model: streamed rows = height + 2 halo rows, +1 flush.
        for b in &blocks {
            assert_eq!(tile_cycles(*b), (b.height() + 3) as u64);
        }
    }
}

/// Batches tile `[0, cols)` in order at full width, remainder last; the
/// single-column chain degenerates to one batch per column.
#[test]
fn col_batches_tile_the_columns() {
    let mut rng = DetRng::seed_from_u64(1003);
    for _ in 0..CASES {
        let cols = rng.gen_range(1, 400);
        let width = rng.gen_range(1, 80);
        let batches = col_batches(cols, width);
        assert_eq!(batches.len(), cols.div_ceil(width));
        assert_eq!(batches[0].c0, 0, "no FIFO underflow at the first batch");
        assert_eq!(batches.last().unwrap().c1, cols, "no uncovered seam");
        for w in batches.windows(2) {
            assert_eq!(w[0].c1, w[1].c0, "contiguous seams");
        }
        for (k, b) in batches.iter().enumerate() {
            assert!(b.active() >= 1 && b.active() <= width);
            if k + 1 < batches.len() {
                assert_eq!(b.active(), width);
            }
        }
    }
    let singles = col_batches(7, 1);
    assert_eq!(singles.len(), 7, "width-1 chain: one column per batch");
    assert!(singles.iter().all(|b| b.active() == 1));
}

/// The bridge the differential harness stands on: for every legal
/// elastic option of a random configuration, the planner-derived
/// `PlanSpec` of every strip passes `lint_plan` with no diagnostics.
#[test]
fn derived_plans_are_lint_clean_by_construction() {
    let mut rng = DetRng::seed_from_u64(1004);
    let mut checked = 0usize;
    for _ in 0..CASES {
        let mut config = FdmaxConfig::paper_default();
        config.pe_rows = rng.gen_range(1, 13);
        config.pe_cols = rng.gen_range(1, 13);
        config.fifo_depth = rng.gen_range(1, 70);
        let rows = rng.gen_range(3, 120);
        let cols = rng.gen_range(3, 120);
        for elastic in ElasticConfig::options(&config) {
            for strip in row_strips(rows, elastic.subarrays) {
                let plan = PlanSpec::derive(&config, &elastic, strip, cols);
                let report = lint_plan(&plan);
                assert!(
                    report.is_empty(),
                    "planner-derived schedule flagged for {config:?} {elastic:?} \
                     strip {strip:?}:\n{report}"
                );
                checked += 1;
            }
        }
    }
    assert!(checked > CASES, "the option space was actually explored");
}

/// Sub-FIFO chaining conserves capacity: splitting the array into more
/// chains makes each chain's FIFO proportionally deeper, and the depth
/// bound used by blocks matches it.
#[test]
fn sub_fifo_depth_scales_with_chaining() {
    let mut rng = DetRng::seed_from_u64(1005);
    for _ in 0..CASES {
        let mut config = FdmaxConfig::paper_default();
        config.pe_rows = rng.gen_range(1, 13);
        config.pe_cols = rng.gen_range(1, 13);
        config.fifo_depth = rng.gen_range(1, 70);
        for elastic in ElasticConfig::options(&config) {
            let depth = elastic.sub_fifo_depth(&config);
            assert_eq!(
                depth,
                config.fifo_depth * config.pe_rows / elastic.subarrays,
                "chained rows pool their physical FIFOs"
            );
            assert_eq!(
                depth * elastic.subarrays,
                config.fifo_depth * config.pe_rows,
                "no capacity invented or lost"
            );
        }
    }
}
