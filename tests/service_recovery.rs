//! Crash-point property suite for the durable solve service.
//!
//! The contract under test is the strongest one `fdmax::durability`
//! makes: **kill the process at any byte of the write-ahead journal and
//! recovery reproduces the uninterrupted run bit for bit.** For three
//! master seeds and a mixed-PDE workload, a fully journalled baseline
//! run is truncated at [`DetRng`]-chosen byte offsets — frame
//! boundaries, mid-record torn writes, offset zero — and each truncated
//! journal is recovered and drained:
//!
//! 1. every job that was still incomplete at the crash point finishes
//!    with the **same [`ServiceReport::digest`]** (outcome, clock
//!    fields, fault trace, every solution bit) as the baseline;
//! 2. jobs already completed before the cut are *not* re-run — the
//!    recovered service trusts the journalled state image;
//! 3. across the sweep both recovery paths really occur: resume from a
//!    persisted checkpoint *and* deterministic replay from iteration
//!    zero (including cuts that tear a record in half);
//! 4. a second recovery after the drain is quiescent — nothing left to
//!    re-admit;
//! 5. an unwritable journal directory degrades the service loudly
//!    (stats flag) without failing a single job, and recovery from the
//!    broken path still yields a working, degraded service.

use detrng::DetRng;
use fdm::convergence::StopCondition;
use fdm::pde::PdeKind;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::durability::{decode_journal, DurabilityConfig, FsyncPolicy, JournalRecord};
use fdmax::resilience::ResiliencePolicy;
use fdmax::service::{JobSpec, ServiceConfig, SolveService};
use memmodel::faults::{EccMode, FaultCampaign};
use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

/// Three distinct master seeds, as the acceptance bar requires.
const SEEDS: [u64; 3] = [0xA5A5, 0x00C1_05ED, 0xFD11_2233];

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

const JOBS: u64 = 5;

/// The `i`-th job of the mix: PDE kind, grid size, step count and
/// update method all vary deterministically with the index.
fn mixed_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 10 + (i as usize * 3) % 8;
    let steps = 8 + (i as usize * 7) % 24;
    let sp = benchmark_problem::<f32>(kind, n, steps).unwrap();
    let method = if i.is_multiple_of(3) {
        HwUpdateMethod::Hybrid
    } else {
        HwUpdateMethod::Jacobi
    };
    JobSpec::new(sp, method, StopCondition::fixed_steps(steps))
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fdmax-recov-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Dense parity-detected flips with a zero retry budget: the detailed
/// rung fails deterministically, so every job is served by the
/// checkpoint-taking reference rung.
fn checkpointing_config(dir: &Path) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.campaign = FaultCampaign {
        sram_flips_per_iteration: 5.0,
        dma_failure_prob: 0.0,
        ..FaultCampaign::harsh(0x0B5E55)
    };
    cfg.policy = ResiliencePolicy {
        max_retries: 0,
        ..ResiliencePolicy::default()
    };
    cfg.with_durability(
        DurabilityConfig::new(dir)
            .with_checkpoint_every(7)
            .with_fsync_policy(FsyncPolicy::Never),
    )
}

/// A moderately hostile campaign the detailed rung mostly survives:
/// recovery exercises deterministic replay-from-zero across the whole
/// fallback chain rather than checkpoint resume.
fn chaotic_config(dir: &Path, seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.campaign = FaultCampaign {
        seed,
        sram_flips_per_iteration: 0.05,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.005,
        max_dma_retries: 4,
        dma_backoff_cycles: 16,
    };
    cfg.with_durability(
        DurabilityConfig::new(dir)
            .with_checkpoint_every(7)
            .with_fsync_policy(FsyncPolicy::Never),
    )
}

/// Runs the full mixed workload on a fresh durable service and returns
/// the per-job report digests plus the journal bytes and checkpoint
/// files left behind.
fn baseline(config: ServiceConfig, dir: &Path) -> (BTreeMap<u64, u64>, Vec<u8>) {
    let mut svc = SolveService::new(config);
    for i in 0..JOBS {
        let _ = svc.submit(mixed_spec(i)).unwrap();
    }
    let digests: BTreeMap<u64, u64> = svc.drain().iter().map(|r| (r.job.0, r.digest())).collect();
    assert_eq!(digests.len() as u64, JOBS);
    assert!(!svc.stats().journal_degraded);
    let journal = std::fs::read(dir.join("journal.fdx")).unwrap();
    (digests, journal)
}

/// Materialises a crash at byte `cut` of the baseline journal: a fresh
/// directory holding the truncated journal plus every checkpoint file
/// (checkpoints are written atomically before the record naming them,
/// so any checkpoint a surviving record references exists on disk).
fn crash_dir(base: &Path, tag: &str, journal: &[u8], cut: usize) -> PathBuf {
    let dir = tmpdir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    for entry in std::fs::read_dir(base).unwrap() {
        let entry = entry.unwrap();
        let name = entry.file_name();
        if name != "journal.fdx" {
            std::fs::copy(entry.path(), dir.join(name)).unwrap();
        }
    }
    std::fs::write(dir.join("journal.fdx"), &journal[..cut]).unwrap();
    dir
}

/// Byte offsets of each frame boundary in an encoded journal.
fn frame_boundaries(journal: &[u8]) -> Vec<usize> {
    let mut offsets = vec![0usize];
    for record in &decode_journal(journal).records {
        offsets.push(offsets.last().unwrap() + record.encode().len());
    }
    offsets
}

/// The crash-point sweep for one (config, seed) pair. Returns
/// `(resumed_from_checkpoint, torn_tails)` totals across the sweep so
/// callers can assert both recovery paths really ran.
fn sweep(tag: &str, config_of: impl Fn(&Path) -> ServiceConfig, cuts: usize) -> (u64, u64) {
    let base = tmpdir(&format!("{tag}-base"));
    let (digests, journal) = baseline(config_of(&base), &base);
    let contents = decode_journal(&journal);
    assert!(!contents.torn, "the baseline journal is whole");
    let boundaries = frame_boundaries(&journal);
    assert_eq!(*boundaries.last().unwrap(), journal.len());

    // DetRng-chosen offsets: arbitrary bytes (mostly mid-record), plus
    // offset zero, plus the boundary right after the last checkpoint
    // record (guaranteeing at least one checkpoint resume when the
    // workload checkpoints at all).
    let mut rng = DetRng::seed_from_u64(0xC4A5_4000 ^ journal.len() as u64);
    let mut offsets: BTreeSet<usize> = (0..cuts).map(|_| rng.gen_range(1, journal.len())).collect();
    offsets.insert(0);
    if let Some(last_ckpt) = contents
        .records
        .iter()
        .rposition(|r| matches!(r, JournalRecord::CheckpointTaken { .. }))
    {
        offsets.insert(boundaries[last_ckpt + 1]);
    }

    let mut resumed_total = 0u64;
    let mut torn_total = 0u64;
    for (k, cut) in offsets.iter().copied().enumerate() {
        let dir = crash_dir(&base, &format!("{tag}-cut{k}"), &journal, cut);

        // What the truncated prefix admits vs completes decides what
        // recovery must re-run.
        let prefix = decode_journal(&journal[..cut]);
        let completed: BTreeSet<u64> = prefix
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Completed { id, .. } => Some(*id),
                _ => None,
            })
            .collect();
        let pending: Vec<u64> = prefix
            .records
            .iter()
            .filter_map(|r| match r {
                JournalRecord::Submitted { id, .. } => Some(*id),
                _ => None,
            })
            .filter(|id| !completed.contains(id))
            .collect();

        let (mut svc, summary) = SolveService::recover(config_of(&dir));
        torn_total += u64::from(summary.torn_tail);
        resumed_total += summary.resumed_from_checkpoint;
        assert_eq!(
            summary.jobs_completed as usize,
            completed.len(),
            "cut {cut}"
        );
        assert_eq!(summary.jobs_recovered as usize, pending.len(), "cut {cut}");
        assert!(!summary.journal_degraded, "cut {cut}");

        let reports = svc.drain();
        assert_eq!(
            reports.len(),
            pending.len(),
            "cut {cut}: exactly the \
             incomplete jobs re-run"
        );
        for report in &reports {
            assert_eq!(
                report.digest(),
                digests[&report.job.0],
                "cut {cut}: job {} diverged from the uninterrupted run",
                report.job
            );
        }
        assert_eq!(svc.stats().recovered_jobs as usize, pending.len());

        // Recovery after the drain is quiescent: the journal now holds
        // a Completed record for every Submitted one.
        drop(svc);
        let (_, again) = SolveService::recover(config_of(&dir));
        assert_eq!(
            again.jobs_recovered, 0,
            "cut {cut}: drained journal \
             has nothing left to re-admit"
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }
    std::fs::remove_dir_all(&base).unwrap();
    (resumed_total, torn_total)
}

/// Crash points against the checkpoint-heavy workload: every job is
/// served by the reference rung, so cuts beyond the first cadence
/// boundary resume mid-solve from a persisted snapshot.
#[test]
fn any_crash_point_recovers_bit_identically_with_checkpoints() {
    let (resumed, torn) = sweep("ckpt", checkpointing_config, 6);
    assert!(resumed > 0, "no cut ever resumed from a checkpoint");
    assert!(torn > 0, "no cut ever tore a record mid-frame");
}

/// Crash points against the chaotic campaign: the detailed rung serves
/// most jobs (it takes no checkpoints), so recovery leans on
/// deterministic replay from iteration zero — same digests regardless.
#[test]
fn any_crash_point_recovers_bit_identically_under_chaos() {
    for seed in SEEDS {
        let tag = format!("chaos{seed:x}");
        let (_, torn) = sweep(&tag, |dir| chaotic_config(dir, seed), 4);
        assert!(torn > 0, "seed {seed:#x}: no cut ever tore a record");
    }
}

/// An unwritable journal directory must never fail a job: the service
/// degrades to in-memory operation, says so loudly in its stats, and
/// recovery from the broken path comes up degraded but functional.
#[test]
fn unwritable_journal_dir_degrades_without_failing_jobs() {
    let dir = tmpdir("degraded");
    std::fs::create_dir_all(&dir).unwrap();
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, b"not a directory").unwrap();
    let config = || {
        ServiceConfig::new(FdmaxConfig::paper_default())
            .with_durability(DurabilityConfig::new(blocker.join("journal")))
    };

    let mut svc = SolveService::new(config());
    for i in 0..JOBS {
        let _ = svc.submit(mixed_spec(i)).unwrap();
    }
    let reports = svc.drain();
    assert_eq!(reports.len() as u64, JOBS);
    for report in &reports {
        assert!(report.served_by().is_some(), "{}: job failed", report.job);
    }
    assert!(svc.stats().journal_degraded, "degradation is loud");
    assert!(svc.stats().journal_io_errors > 0);

    let (svc, summary) = SolveService::recover(config());
    assert!(summary.journal_degraded);
    assert!(svc.stats().journal_degraded);
    assert_eq!(summary.jobs_recovered, 0);
    std::fs::remove_dir_all(&dir).unwrap();
}
