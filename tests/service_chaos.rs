//! Deterministic chaos/soak validation of the resilient solve service.
//!
//! Hundreds of mixed-PDE jobs run through [`fdmax::service::SolveService`]
//! under seeded [`memmodel::faults`] campaigns, with interleaved
//! submissions, saturation-driven drains and sporadic cancellations.
//! The contracts pinned here:
//!
//! 1. **Termination** — every admitted job ends with a definite
//!    [`ServiceReport`], and no served job exceeds its deadline by more
//!    than one iteration (in fact the budget gate never overshoots at
//!    all);
//! 2. **Replay** — the same master seed and submission order reproduce
//!    every outcome, iteration count, cycle tally and solution bit for
//!    bit;
//! 3. **Breakers** — a deterministically failing backend trips its
//!    circuit breaker within `open_after` consecutive failures, and a
//!    clean probe after the cool-down closes it again;
//! 4. **Fallback fidelity** — Jacobi answers served by a fallback rung
//!    are bit-identical to the software reference, the same tolerance
//!    `tests/engine_equivalence.rs` pins for the healthy stack.

use fdm::convergence::StopCondition;
use fdm::engine::{Session, SweepEngine};
use fdm::pde::PdeKind;
use fdm::solver::UpdateMethod;
use fdm::workload::benchmark_problem;
use fdmax::accelerator::HwUpdateMethod;
use fdmax::config::FdmaxConfig;
use fdmax::resilience::ResiliencePolicy;
use fdmax::service::{
    BreakerConfig, BreakerState, JobOutcome, JobSpec, Rung, ServiceConfig, ServiceReport,
    SolveService, SubmitError,
};
use memmodel::faults::{EccMode, FaultCampaign};

/// Three distinct master seeds, as the acceptance bar requires.
const SEEDS: [u64; 3] = [0xA5A5, 0x00C1_05ED, 0xFD11_2233];

const KINDS: [PdeKind; 4] = [
    PdeKind::Laplace,
    PdeKind::Poisson,
    PdeKind::Heat,
    PdeKind::Wave,
];

/// A service sized so the FDX011 invariant holds
/// (`queue_capacity x max_job_iterations <= deadline_iterations`) with a
/// moderately hostile campaign: parity-detected SRAM upsets plus a
/// flaky DMA bus.
fn chaos_config(seed: u64) -> ServiceConfig {
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    cfg.queue_capacity = 8;
    cfg.max_job_iterations = 40;
    cfg.deadline_iterations = 8 * 40;
    cfg.campaign = FaultCampaign {
        seed,
        sram_flips_per_iteration: 0.05,
        ecc: EccMode::Parity,
        dma_failure_prob: 0.005,
        max_dma_retries: 4,
        dma_backoff_cycles: 16,
    };
    cfg
}

/// The `i`-th job of the mix: PDE kind, grid size, step count and
/// update method all vary deterministically with the index.
fn mixed_spec(i: u64) -> JobSpec {
    let kind = KINDS[(i % 4) as usize];
    let n = 10 + (i as usize * 3) % 12;
    let steps = 8 + (i as usize * 7) % 32;
    let sp = benchmark_problem::<f32>(kind, n, steps).unwrap();
    let method = if i.is_multiple_of(3) {
        HwUpdateMethod::Hybrid
    } else {
        HwUpdateMethod::Jacobi
    };
    JobSpec::new(sp, method, StopCondition::fixed_steps(steps))
}

/// Pushes `jobs` mixed jobs through a fresh service: submissions
/// interleave with saturation-driven drains, and every 17th job is
/// cancelled right after admission.
fn soak(seed: u64, jobs: u64) -> (Vec<ServiceReport>, SolveService) {
    let mut svc = SolveService::new(chaos_config(seed));
    assert!(
        svc.config().lint().is_clean(),
        "the soak sizing is FDX011-clean"
    );
    let mut reports = Vec::new();
    let mut admitted = 0u64;
    while admitted < jobs {
        match svc.submit(mixed_spec(admitted)) {
            Ok(ticket) => {
                if admitted.is_multiple_of(17) {
                    ticket.cancel.cancel();
                }
                admitted += 1;
            }
            Err(SubmitError::Saturated {
                retry_after_jobs, ..
            }) => {
                assert!(retry_after_jobs >= 1);
                reports.push(svc.run_next().expect("saturated queue is non-empty"));
            }
            Err(SubmitError::Rejected(e)) => panic!("valid job rejected: {e}"),
        }
    }
    reports.extend(svc.drain());
    (reports, svc)
}

#[test]
fn soak_every_admitted_job_terminates_on_time() {
    for seed in SEEDS {
        let jobs = 120u64;
        let (reports, svc) = soak(seed, jobs);
        // Every admitted job terminated with a definite report.
        assert_eq!(reports.len() as u64, jobs, "seed {seed:#x}");
        let stats = svc.stats();
        assert_eq!(stats.submitted, jobs);
        assert_eq!(stats.served + stats.cancelled + stats.failed, jobs);
        assert_eq!(stats.deadline_misses, 0, "seed {seed:#x}");

        let mut recovered_any = false;
        for r in &reports {
            // The deadline contract: at most one iteration of overshoot
            // allowed, and the budget gate actually allows none.
            assert!(
                r.completed_at <= r.deadline_at + 1,
                "seed {seed:#x} {}: completed {} vs deadline {}",
                r.job,
                r.completed_at,
                r.deadline_at
            );
            assert!(r.completed_at <= r.deadline_at);
            match &r.outcome {
                JobOutcome::Served { rung, .. } => {
                    assert!(r.deadline_met());
                    if *rung != Rung::Estimate {
                        assert!(r.solution.is_some(), "{}: served without a field", r.job);
                    }
                    assert!(!r.attempts.is_empty());
                }
                JobOutcome::Cancelled { .. } => {}
                JobOutcome::Failed(e) => panic!(
                    "seed {seed:#x} {}: no rung served ({e}); the analytic rung \
                     must be a terminal guarantee on plannable grids",
                    r.job
                ),
            }
            if r.recovery
                .as_ref()
                .is_some_and(fdmax::RecoveryReport::recovered)
            {
                recovered_any = true;
            }
        }
        assert!(recovered_any, "seed {seed:#x}: the campaign never fired");
        assert_eq!(
            stats.cancelled,
            jobs.div_ceil(17),
            "every 17th job cancelled"
        );
    }
}

#[test]
fn soak_replays_bit_identically() {
    let summarize = |reports: &[ServiceReport]| {
        reports
            .iter()
            .map(|r| {
                (
                    r.job,
                    r.outcome.clone(),
                    r.iterations,
                    r.latency_cycles,
                    r.admitted_at,
                    r.completed_at,
                    r.converged,
                    r.solution.clone(),
                )
            })
            .collect::<Vec<_>>()
    };
    let (a, svc_a) = soak(SEEDS[0], 60);
    let (b, svc_b) = soak(SEEDS[0], 60);
    assert_eq!(summarize(&a), summarize(&b), "same seed, same history");
    assert_eq!(svc_a.stats(), svc_b.stats());
    assert_eq!(svc_a.transitions(), svc_b.transitions());
    assert_eq!(svc_a.clock(), svc_b.clock());

    // A different seed draws a different fault history somewhere.
    let (c, _) = soak(SEEDS[1], 60);
    assert_ne!(summarize(&a), summarize(&c), "distinct seeds diverge");
}

#[test]
fn breakers_trip_within_the_failure_bound_and_recover() {
    let open_after = 3u32;
    let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
    // Dense parity-detected flips with a zero retry budget: the
    // detailed rung fails deterministically on every faulted job.
    cfg.campaign = FaultCampaign {
        sram_flips_per_iteration: 5.0,
        dma_failure_prob: 0.0,
        ..FaultCampaign::harsh(0x0B5E55)
    };
    cfg.policy = ResiliencePolicy {
        max_retries: 0,
        ..ResiliencePolicy::default()
    };
    cfg.breaker = BreakerConfig {
        open_after,
        cooldown_jobs: 4,
        close_after: 1,
    };
    let mut svc = SolveService::new(cfg);

    // Feed failing jobs until the breaker opens; count the failures it
    // took.
    let mut detailed_failures = 0u32;
    for _ in 0..open_after {
        assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Closed);
        let _ = svc.submit(mixed_spec(1)).unwrap(); // index 1: Jacobi Laplace
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Reference), "fell back");
        detailed_failures += 1;
    }
    assert_eq!(
        svc.breaker_state(Rung::Detailed),
        BreakerState::Open,
        "opened after exactly {detailed_failures} consecutive failures"
    );
    assert!(detailed_failures <= open_after);
    assert!(svc.transitions().iter().any(|t| t.rung == Rung::Detailed
        && t.from == BreakerState::Closed
        && t.to == BreakerState::Open));

    // While open the rung is skipped, and each submission ticks the
    // cool-down; after `cooldown_jobs` submissions a clean probe closes
    // the breaker again.
    for _ in 0..3 {
        let _ = svc.submit(mixed_spec(1)).unwrap();
        let report = svc.run_next().unwrap();
        assert!(report.attempts.iter().any(|a| a.rung == Rung::Detailed
            && a.disposition == fdmax::service::AttemptDisposition::SkippedBreakerOpen));
    }
    let _ = svc
        .submit(mixed_spec(1).with_campaign(FaultCampaign::disabled()))
        .unwrap();
    assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::HalfOpen);
    let probe = svc.run_next().unwrap();
    assert_eq!(probe.served_by(), Some(Rung::Detailed), "probe succeeded");
    assert_eq!(svc.breaker_state(Rung::Detailed), BreakerState::Closed);
    assert!(svc.transitions().iter().any(|t| t.rung == Rung::Detailed
        && t.from == BreakerState::HalfOpen
        && t.to == BreakerState::Closed));
}

#[test]
fn fallback_answers_match_the_software_reference_bit_for_bit() {
    // Jacobi is bit-exact across every iterative backend (the
    // engine-equivalence contract), so an answer served by a fallback
    // rung must equal the software sweep exactly — degraded latency,
    // identical numerics.
    for (i, kind) in KINDS.into_iter().enumerate() {
        let steps = 10usize;
        let mut cfg = ServiceConfig::new(FdmaxConfig::paper_default());
        cfg.breaker = BreakerConfig {
            open_after: 1,
            cooldown_jobs: 100,
            close_after: 1,
        };
        cfg.campaign = FaultCampaign {
            sram_flips_per_iteration: 5.0,
            dma_failure_prob: 0.0,
            ..FaultCampaign::harsh(3 + i as u64)
        };
        cfg.policy = ResiliencePolicy {
            max_retries: 0,
            ..ResiliencePolicy::default()
        };
        let mut svc = SolveService::new(cfg);
        let sp = benchmark_problem::<f32>(kind, 18, steps).unwrap();
        let _ = svc
            .submit(JobSpec::new(
                sp.clone(),
                HwUpdateMethod::Jacobi,
                StopCondition::fixed_steps(steps),
            ))
            .unwrap();
        let report = svc.run_next().unwrap();
        assert_eq!(report.served_by(), Some(Rung::Reference), "{kind}");
        assert!(report.degraded());

        let mut session = Session::new(
            SweepEngine::new(&sp, UpdateMethod::Jacobi),
            StopCondition::fixed_steps(steps),
        );
        session
            .run()
            .expect("budget-free session on a healthy problem cannot fail");
        let (engine, _history) = session.into_parts();
        let sw = engine.into_solution();
        let got = report.solution.as_ref().unwrap();
        for r in 0..sw.rows() {
            for c in 0..sw.cols() {
                assert_eq!(
                    got[(r, c)].to_bits(),
                    sw[(r, c)].to_bits(),
                    "{kind}: fallback diverged from software at ({r},{c})"
                );
            }
        }
    }
}
